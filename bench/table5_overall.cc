// Table V reproduction: overall performance comparison of all baselines
// plus AutoFIS and OptInter on every dataset profile — AUC, log loss and
// parameter count per model — and the Table VI selection summary for the
// hybrid/search methods.
//
// With --repeats > 1, also runs the paper's significance test (§III-A5):
// a paired two-tailed t-test between OptInter and the best baseline over
// repeated seeds.

#include <cstdio>
#include <map>

#include "bench_util.h"
#include "core/pipeline.h"
#include "core/zoo.h"
#include "metrics/metrics.h"
#include "metrics/significance.h"

using namespace optinter;
using namespace optinter::bench;

namespace {

struct Row {
  std::string model;
  double auc = 0.0;
  double logloss = 0.0;
  size_t params = 0;
  std::string arch;
  TrainTelemetry telemetry;
};

Row RunBaseline(const std::string& name, const PreparedDataset& p,
                const HyperParams& hp, const TrainOptions& topts) {
  auto model = CreateBaseline(name, p.data, hp);
  CHECK(model.ok()) << model.status().ToString();
  TrainSummary s = TrainModel(model->get(), p.data, p.splits, topts);
  Row row;
  row.model = name;
  row.auc = s.final_test.auc;
  row.logloss = s.final_test.logloss;
  row.params = (*model)->ParamCount();
  row.telemetry = s.telemetry;
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(&flags);
  flags.AddInt("repeats", 1,
               "seeds per model; >1 enables the paired t-test vs the best "
               "baseline");
  int exit_code = 0;
  if (!ParseOrExit(&flags, argc, argv, &exit_code)) return exit_code;
  const size_t repeats = static_cast<size_t>(flags.GetInt("repeats"));
  BenchReport report("table5_overall", flags);

  for (const auto& name : DatasetList(flags, PaperProfileNames())) {
    PrepareOptions popts;
    popts.rows_scale = flags.GetDouble("rows_scale");
    auto prepared = PrepareProfile(name, popts);
    if (!prepared.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   prepared.status().ToString().c_str());
      return 1;
    }
    const PreparedDataset& p = *prepared;
    HyperParams hp = DefaultHyperParams(name);
    ApplyOverrides(flags, &hp);
    TrainOptions topts = MakeTrainOptions(flags, hp);

    report.Section("Table V analogue: " + name);
    std::vector<Row> rows;
    // Search dynamics of the rep-0 OptInter run, attached to its report
    // row below.
    obs::JsonValue dynamics;
    // AUC per seed, for the significance test.
    std::map<std::string, std::vector<double>> auc_by_model;

    for (size_t rep = 0; rep < repeats; ++rep) {
      HyperParams hp_rep = hp;
      hp_rep.seed = hp.seed + rep * 1009;
      TrainOptions topts_rep = topts;
      topts_rep.seed = hp_rep.seed;

      for (const auto& model_name : TableVBaselineNames()) {
        Row row = RunBaseline(model_name, p, hp_rep, topts_rep);
        auc_by_model[model_name].push_back(row.auc);
        if (rep == 0) rows.push_back(row);
      }
      {
        AutoFisResult r = RunAutoFis(p.data, p.splits, hp_rep, topts_rep);
        auc_by_model["AutoFIS"].push_back(r.retrain.final_test.auc);
        if (rep == 0) {
          rows.push_back({"AutoFIS", r.retrain.final_test.auc,
                          r.retrain.final_test.logloss, r.param_count,
                          ArchCountsToString(CountArchitecture(r.arch)),
                          r.retrain.telemetry});
        }
      }
      {
        SearchOptions sopts;
        sopts.search_epochs = hp_rep.search_epochs;
        sopts.verbose = flags.GetBool("verbose");
        OptInterResult r =
            RunOptInter(p.data, p.splits, hp_rep, sopts, topts_rep);
        auc_by_model["OptInter"].push_back(r.retrain.final_test.auc);
        if (rep == 0) {
          rows.push_back({"OptInter", r.retrain.final_test.auc,
                          r.retrain.final_test.logloss, r.param_count,
                          ArchCountsToString(
                              CountArchitecture(r.search.arch)),
                          r.retrain.telemetry});
          dynamics = obs::SearchDynamicsToJson(r.search.dynamics);
        }
      }
    }

    for (const auto& row : rows) {
      report.AddRow(row.model, row.auc, row.logloss, row.params,
                    row.telemetry, row.arch);
      if (row.model == "OptInter") {
        report.AnnotateLastRow("search_dynamics", std::move(dynamics));
      }
    }

    // Table VI summary: method selection per approach.
    const size_t P = p.data.num_pairs();
    PrintHeader("Table VI analogue: " + name +
                " [memorize,factorize,naive] selections");
    std::printf("%-14s [0,0,%zu]\n", "Naive(FNN)", P);
    std::printf("%-14s [%zu,0,0]\n", "OptInter-M", P);
    std::printf("%-14s [0,%zu,0]\n", "OptInter-F", P);
    for (const auto& row : rows) {
      if (row.model == "AutoFIS" || row.model == "OptInter") {
        std::printf("%-14s %s\n", row.model.c_str(), row.arch.c_str());
      }
    }

    if (repeats > 1) {
      // Best baseline by mean AUC (excluding OptInter itself).
      std::string best;
      double best_mean = -1.0;
      for (const auto& [model_name, aucs] : auc_by_model) {
        if (model_name == "OptInter") continue;
        const double m = Mean(aucs);
        if (m > best_mean) {
          best_mean = m;
          best = model_name;
        }
      }
      auto t = PairedTTest(auc_by_model["OptInter"], auc_by_model[best]);
      std::printf(
          "\nsignificance (%zu seeds): OptInter mean AUC %.4f vs best "
          "baseline %s %.4f, paired t=%.3f, p=%.4g\n",
          repeats, Mean(auc_by_model["OptInter"]), best.c_str(), best_mean,
          t.t_statistic, t.p_value);
    }
  }
  return report.Finish();
}
