// Figure 5 reproduction: mean mutual-information score of the feature
// interactions assigned to each modelling method by the OptInter search
// (paper §III-G1) — memorized pairs should carry the highest MI, naïve
// pairs the lowest. As a synthetic-data bonus, we also cross-tabulate the
// searched methods against the *planted* ground-truth pair kinds.

#include <cstdio>

#include "bench_util.h"
#include "core/pipeline.h"
#include "metrics/mutual_information.h"

using namespace optinter;
using namespace optinter::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(&flags);
  int exit_code = 0;
  if (!ParseOrExit(&flags, argc, argv, &exit_code)) return exit_code;

  for (const auto& name :
       DatasetList(flags, {"criteo_like", "avazu_like"})) {
    PrepareOptions popts;
    popts.rows_scale = flags.GetDouble("rows_scale");
    auto prepared = PrepareProfile(name, popts);
    if (!prepared.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   prepared.status().ToString().c_str());
      return 1;
    }
    const PreparedDataset& p = *prepared;
    HyperParams hp = DefaultHyperParams(name);
    ApplyOverrides(flags, &hp);

    SearchOptions sopts;
    sopts.search_epochs = hp.search_epochs;
    sopts.verbose = flags.GetBool("verbose");
    SearchResult search = RunSearchStage(p.data, p.splits, hp, sopts);

    // OOV-collapsed cross-feature MI: the signal available to a
    // memorized table (raw-id pair MI is inflated for sparse pairs).
    const auto mi = AllCrossMutualInformation(p.data, p.splits.train);

    PrintHeader("Figure 5 analogue: " + name +
                " — mean MI(pair; label) per selected method");
    double sums[3] = {0, 0, 0};
    size_t counts[3] = {0, 0, 0};
    for (size_t q = 0; q < mi.size(); ++q) {
      const int k = static_cast<int>(search.arch[q]);
      sums[k] += mi[q];
      ++counts[k];
    }
    const char* names[3] = {"memorize", "factorize", "naive"};
    for (int k = 0; k < 3; ++k) {
      if (counts[k] == 0) {
        std::printf("%-10s  (no pairs selected)\n", names[k]);
      } else {
        std::printf("%-10s  pairs %3zu  mean MI %.5f nats\n", names[k],
                    counts[k], sums[k] / static_cast<double>(counts[k]));
      }
    }

    // Cross-tab vs planted ground truth (synthetic-data only diagnostic).
    const auto kinds = p.config.PlantedKinds();
    size_t table[3][3] = {};
    for (size_t q = 0; q < mi.size(); ++q) {
      // Planted rows: memorize=0, factorize=1, noise=2.
      int planted = kinds[q] == PlantedKind::kMemorize    ? 0
                    : kinds[q] == PlantedKind::kFactorize ? 1
                                                          : 2;
      table[planted][static_cast<int>(search.arch[q])]++;
    }
    std::printf("\nplanted kind vs searched method (rows = planted):\n");
    std::printf("%-16s %9s %9s %9s\n", "", "memorize", "factorize",
                "naive");
    const char* planted_names[3] = {"planted-mem", "planted-fact",
                                    "planted-noise"};
    for (int r = 0; r < 3; ++r) {
      std::printf("%-16s %9zu %9zu %9zu\n", planted_names[r], table[r][0],
                  table[r][1], table[r][2]);
    }
    const size_t planted_mem_total = table[0][0] + table[0][1] + table[0][2];
    if (planted_mem_total > 0) {
      std::printf("recall of planted memorize pairs as memorized: %.0f%%\n",
                  100.0 * table[0][0] / planted_mem_total);
    }
  }
  return 0;
}
