// Higher-order extension ablation (paper §II-B1: "our methods could
// easily be extended to higher-order"). On a criteo_like dataset with
// *planted third-order* effects:
//   1. run the standard second-order OptInter pipeline;
//   2. build third-order cross-product features, rank all C(M,3) triples
//      by MI lift over their best constituent pair, and memorize the
//      top-K alongside the searched pairwise architecture;
//   3. compare AUC / log loss / parameters.
// The selector should surface the planted triples, and memorizing them
// should beat the second-order model.

#include <cstdio>

#include "bench_util.h"
#include "core/fixed_arch_model.h"
#include "core/pipeline.h"
#include "metrics/mutual_information.h"

using namespace optinter;
using namespace optinter::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(&flags);
  flags.AddInt("top_triples", 4, "number of triples to memorize");
  int exit_code = 0;
  if (!ParseOrExit(&flags, argc, argv, &exit_code)) return exit_code;

  PrepareOptions popts;
  popts.rows_scale = flags.GetDouble("rows_scale");
  auto prepared = PrepareProfile("criteo3_like", popts);
  CHECK(prepared.ok()) << prepared.status().ToString();
  PreparedDataset p = std::move(prepared).value();

  HyperParams hp = DefaultHyperParams("criteo_like");
  ApplyOverrides(flags, &hp);
  TrainOptions topts = MakeTrainOptions(flags, hp);

  PrintHeader("Higher-order extension: criteo3_like (planted triples: " +
              std::to_string(p.config.memorize_triples.size()) + ")");

  // Second-order OptInter.
  SearchOptions sopts;
  sopts.search_epochs = hp.search_epochs;
  sopts.verbose = flags.GetBool("verbose");
  SearchResult search = RunSearchStage(p.data, p.splits, hp, sopts);
  FixedArchRun second =
      TrainFixedArch(p.data, p.splits, search.arch, hp, topts, "OptInter");
  PrintModelRow("OptInter(2nd)", second.summary.final_test.auc,
                second.summary.final_test.logloss, second.param_count,
                ArchCountsToString(CountArchitecture(search.arch)));

  // Build all triples and select by MI lift.
  CHECK_OK(BuildTripleCrossFeatures(&p.data, p.splits.train, popts.encoder,
                                    EnumerateTriples(
                                        p.data.num_categorical())));
  const size_t k = static_cast<size_t>(flags.GetInt("top_triples"));
  auto selected = SelectTopTriplesByMiLift(p.data, p.splits.train, k);

  std::printf("\ntop-%zu triples by MI lift (planted: ", k);
  for (const auto& t : p.config.memorize_triples) {
    std::printf("{%zu,%zu,%zu} ", t[0], t[1], t[2]);
  }
  std::printf("):\n");
  size_t planted_found = 0;
  for (size_t idx : selected) {
    const auto& tr = p.data.triple_fields[idx];
    bool planted = false;
    for (const auto& t : p.config.memorize_triples) {
      planted |= t == tr;
    }
    planted_found += planted;
    std::printf("  {%zu,%zu,%zu}  MI %.5f  vocab %zu %s\n", tr[0], tr[1],
                tr[2],
                TripleLabelMutualInformation(p.data, idx, p.splits.train),
                p.data.triple_vocab_sizes[idx],
                planted ? "<- planted" : "");
  }
  std::printf("planted triples recovered in top-%zu: %zu/%zu\n", k,
              planted_found, p.config.memorize_triples.size());

  // Third-order model: searched pairwise arch + memorized top-K triples.
  {
    FixedArchModel model(p.data, search.arch, hp, "OptInter(3rd)",
                         selected);
    TrainSummary s = TrainModel(&model, p.data, p.splits, topts);
    PrintModelRow("OptInter(3rd)", s.final_test.auc, s.final_test.logloss,
                  model.ParamCount(),
                  StrFormat("+%zu memorized triples", selected.size()));
  }
  return 0;
}
