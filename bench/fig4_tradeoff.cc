// Figure 4 reproduction: the efficiency–effectiveness trade-off between
// OptInter-M and OptInter as the memorized embedding size s2 varies
// (paper §III-D). The paper's observations to reproduce:
//   1. OptInter matches/beats OptInter-M with far fewer parameters.
//   2. Shrinking s2 shrinks parameters with only a slight AUC drop —
//      better than throwing away memorized interactions.
//
// The OptInter architecture is searched once at the profile's default s2
// and re-trained at each swept s2 (the search decides *what* to memorize;
// the sweep varies *how big* the memory is).

#include <cstdio>

#include "bench_util.h"
#include "core/fixed_arch_model.h"
#include "core/pipeline.h"

using namespace optinter;
using namespace optinter::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(&flags);
  flags.AddString("s2_list", "2,4,8", "memorized embedding sizes to sweep");
  int exit_code = 0;
  if (!ParseOrExit(&flags, argc, argv, &exit_code)) return exit_code;

  BenchReport report("fig4_tradeoff", flags);
  std::vector<size_t> s2_values;
  for (const auto& part : Split(flags.GetString("s2_list"), ',')) {
    s2_values.push_back(static_cast<size_t>(std::stoul(part)));
  }

  for (const auto& name :
       DatasetList(flags, {"criteo_like", "avazu_like"})) {
    PrepareOptions popts;
    popts.rows_scale = flags.GetDouble("rows_scale");
    auto prepared = PrepareProfile(name, popts);
    if (!prepared.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   prepared.status().ToString().c_str());
      return 1;
    }
    const PreparedDataset& p = *prepared;
    HyperParams hp = DefaultHyperParams(name);
    ApplyOverrides(flags, &hp);
    TrainOptions topts = MakeTrainOptions(flags, hp);

    // Search once at the default s2.
    SearchOptions sopts;
    sopts.search_epochs = hp.search_epochs;
    sopts.verbose = flags.GetBool("verbose");
    SearchResult search = RunSearchStage(p.data, p.splits, hp, sopts);

    report.Section("Figure 4 analogue: " + name +
                   " — AUC vs #params (series over s2)");
    for (const size_t s2 : s2_values) {
      HyperParams hp_s2 = hp;
      hp_s2.cross_embed_dim = s2;
      {
        FixedArchRun run = TrainFixedArch(
            p.data, p.splits, AllMemorize(p.data.num_pairs()), hp_s2,
            topts, "OptInter-M");
        report.AddRow(StrFormat("OptInter-M(%zu)", s2),
                      run.summary.final_test.auc,
                      run.summary.final_test.logloss, run.param_count,
                      run.summary.telemetry);
      }
      {
        FixedArchRun run = TrainFixedArch(p.data, p.splits, search.arch,
                                          hp_s2, topts, "OptInter");
        report.AddRow(StrFormat("OptInter(%zu)", s2),
                      run.summary.final_test.auc,
                      run.summary.final_test.logloss, run.param_count,
                      run.summary.telemetry);
      }
    }
    // Dynamics of the one shared search, attached to the section's last row.
    report.AnnotateLastRow(
        "search_dynamics", obs::SearchDynamicsToJson(search.dynamics));
  }
  return report.Finish();
}
