// Figure 6 reproduction: the Avazu case study — (a) a heatmap of the
// mutual information between every field pair and the label and (b) the
// map of searched modelling methods, which should correlate positively.
// Heatmaps are rendered as ASCII grids (digits 0-9 for MI deciles,
// letters M/F/N for methods).

#include <algorithm>
#include <cstdio>

#include "bench_util.h"
#include "core/pipeline.h"
#include "metrics/mutual_information.h"

using namespace optinter;
using namespace optinter::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(&flags);
  int exit_code = 0;
  if (!ParseOrExit(&flags, argc, argv, &exit_code)) return exit_code;

  for (const auto& name : DatasetList(flags, {"avazu_like"})) {
    PrepareOptions popts;
    popts.rows_scale = flags.GetDouble("rows_scale");
    auto prepared = PrepareProfile(name, popts);
    if (!prepared.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   prepared.status().ToString().c_str());
      return 1;
    }
    const PreparedDataset& p = *prepared;
    HyperParams hp = DefaultHyperParams(name);
    ApplyOverrides(flags, &hp);

    SearchOptions sopts;
    sopts.search_epochs = hp.search_epochs;
    sopts.verbose = flags.GetBool("verbose");
    SearchResult search = RunSearchStage(p.data, p.splits, hp, sopts);

    // OOV-collapsed cross-feature MI: the signal available to a
    // memorized table (raw-id pair MI is inflated for sparse pairs).
    const auto mi = AllCrossMutualInformation(p.data, p.splits.train);
    const size_t m = p.data.num_categorical();
    double max_mi = 1e-12;
    for (double v : mi) max_mi = std::max(max_mi, v);

    PrintHeader("Figure 6(a) analogue: " + name +
                " — MI(pair; label) heatmap (0-9 = MI decile)");
    std::printf("     ");
    for (size_t j = 0; j < m; ++j) std::printf("%2zu ", j);
    std::printf("\n");
    for (size_t i = 0; i < m; ++i) {
      std::printf("%3zu  ", i);
      for (size_t j = 0; j < m; ++j) {
        if (i == j) {
          std::printf(" . ");
        } else {
          const size_t q = PairIndex(std::min(i, j), std::max(i, j), m);
          const int decile =
              std::min(9, static_cast<int>(mi[q] / max_mi * 10.0));
          std::printf(" %d ", decile);
        }
      }
      std::printf("\n");
    }

    PrintHeader("Figure 6(b) analogue: " + name +
                " — searched method map (M/F/N)");
    std::printf("     ");
    for (size_t j = 0; j < m; ++j) std::printf("%2zu ", j);
    std::printf("\n");
    for (size_t i = 0; i < m; ++i) {
      std::printf("%3zu  ", i);
      for (size_t j = 0; j < m; ++j) {
        if (i == j) {
          std::printf(" . ");
        } else {
          const size_t q = PairIndex(std::min(i, j), std::max(i, j), m);
          const char c = search.arch[q] == InterMethod::kMemorize    ? 'M'
                         : search.arch[q] == InterMethod::kFactorize ? 'F'
                                                                     : 'N';
          std::printf(" %c ", c);
        }
      }
      std::printf("\n");
    }

    // Quantify the correlation the paper reads off the two maps: mean MI
    // rank per method (memorize should rank highest).
    std::vector<size_t> order(mi.size());
    for (size_t q = 0; q < mi.size(); ++q) order[q] = q;
    std::sort(order.begin(), order.end(),
              [&](size_t a, size_t b) { return mi[a] < mi[b]; });
    std::vector<double> rank(mi.size());
    for (size_t r = 0; r < order.size(); ++r) {
      rank[order[r]] = static_cast<double>(r + 1);
    }
    double rank_sum[3] = {0, 0, 0};
    size_t counts[3] = {0, 0, 0};
    for (size_t q = 0; q < mi.size(); ++q) {
      const int k = static_cast<int>(search.arch[q]);
      rank_sum[k] += rank[q];
      ++counts[k];
    }
    std::printf("\nmean MI rank per method (1 = least informative):\n");
    const char* names[3] = {"memorize", "factorize", "naive"};
    for (int k = 0; k < 3; ++k) {
      if (counts[k] > 0) {
        std::printf("  %-10s %.1f (n=%zu)\n", names[k],
                    rank_sum[k] / counts[k], counts[k]);
      }
    }
  }
  return 0;
}
