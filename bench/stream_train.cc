// Out-of-core streaming acceptance harness: encodes a synthetic profile
// into a shard directory (hash-trick encoder by default), trains an FNN
// end-to-end through StreamingReader, and reports encode + train
// throughput, hash-collision counters, and peak RSS against the
// materialized dataset size. With --parity (default on) it then
// materializes the shards and re-runs the identical schedule through the
// in-RAM control arm — every metric must match the streamed run bitwise,
// and the process exits non-zero if any differs.
//
// The ISSUE's 50M-row Criteo-profile run (criteo_like is 60k rows):
//
//   bench_stream_train --rows_scale=834 --order=window --parity=false
//       --dir=/data/criteo50m --report=stream_train.json
//
// --order=window keeps the training working set near --window-blocks
// shards, so RSS stays far below the dataset size; --order=global is the
// bitwise twin of in-RAM TrainModel but touches every shard per epoch.

#include <sys/stat.h>

#include <cstdint>
#include <cstdio>
#include <cstring>
#include <string>

#include "bench_util.h"
#include "common/stopwatch.h"
#include "core/fixed_arch_model.h"
#include "data/stream_encode.h"
#include "data/stream_reader.h"
#include "obs/registry.h"
#include "synth/profiles.h"
#include "synth/stream_source.h"
#include "train/stream_trainer.h"

using namespace optinter;
using namespace optinter::bench;

namespace {

/// Peak resident set (VmHWM) in bytes, from /proc/self/status.
size_t PeakRssBytes() {
  std::FILE* f = std::fopen("/proc/self/status", "r");
  if (f == nullptr) return 0;
  char line[256];
  size_t kb = 0;
  while (std::fgets(line, sizeof(line), f) != nullptr) {
    if (std::sscanf(line, "VmHWM: %zu kB", &kb) == 1) break;
  }
  std::fclose(f);
  return kb * 1024;
}

size_t DatasetPayloadBytes(const ShardManifest& manifest) {
  size_t total = 0;
  for (const ShardInfo& s : manifest.shards) total += s.payload_bytes;
  return total;
}

std::string HashExtra(const StreamEncodeStats& stats) {
  const uint64_t rows = stats.cat_hash.hashed_rows + stats.cat_hash.hot_rows;
  const double rate =
      rows > 0 ? static_cast<double>(stats.cat_hash.collision_rows) /
                     static_cast<double>(rows)
               : 0.0;
  char buf[160];
  std::snprintf(buf, sizeof(buf),
                "%llu hot, %llu bucketed, %llu collisions (%.3f%%)",
                static_cast<unsigned long long>(stats.cat_hash.hot_rows),
                static_cast<unsigned long long>(stats.cat_hash.hashed_rows),
                static_cast<unsigned long long>(
                    stats.cat_hash.collision_rows),
                100.0 * rate);
  return buf;
}

bool BitwiseEqual(const TrainSummary& a, const TrainSummary& b) {
  return a.epochs_run == b.epochs_run &&
         a.epoch_train_losses == b.epoch_train_losses &&
         a.epoch_val_aucs == b.epoch_val_aucs &&
         a.final_val.auc == b.final_val.auc &&
         a.final_val.logloss == b.final_val.logloss &&
         a.final_test.auc == b.final_test.auc &&
         a.final_test.logloss == b.final_test.logloss;
}

}  // namespace

int main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(&flags);
  flags.AddString("dir", "/tmp/optinter_stream_bench",
                  "shard directory (created/overwritten)");
  flags.AddString("profile", "criteo_like", "synthetic profile to encode");
  flags.AddString("order", "window",
                  "train-epoch row order: window or global");
  flags.AddBool("hashed", true, "hash-trick encoder (vs exact vocab)");
  flags.AddInt("rows-per-shard", 1 << 17, "rows per shard file");
  flags.AddInt("prefetch", 2, "batches prefetched ahead of training");
  flags.AddInt("window-blocks", 8, "shards per shuffle window");
  flags.AddInt("max-resident", 32, "reader's resident-shard bound");
  flags.AddBool("parity", true,
                "materialize and re-run in RAM; fail on any bitwise "
                "metric difference");
  int exit_code = 0;
  if (!ParseOrExit(&flags, argc, argv, &exit_code)) return exit_code;
  BenchReport report("stream_train", flags);

  const std::string dir = flags.GetString("dir");
  const std::string profile = flags.GetString("profile");
  auto fail = [&](const Status& st) {
    std::fprintf(stderr, "stream_train: %s\n", st.ToString().c_str());
    return 1;
  };

  // --- Encode the profile into shards (streamed; O(1) rows in RAM). ---
  auto config = GetProfile(profile);
  if (!config.ok()) return fail(config.status());
  ScaleRows(&*config, flags.GetDouble("rows_scale"));
  if (::mkdir(dir.c_str(), 0755) != 0 && errno != EEXIST) {
    return fail(Status::IoError("cannot create '" + dir + "'"));
  }
  StreamEncodeOptions eopts;
  eopts.rows_per_shard = static_cast<size_t>(flags.GetInt("rows-per-shard"));
  eopts.hashed = flags.GetBool("hashed");
  Stopwatch encode_timer;
  SynthRowSource rows(*config);
  auto stats = StreamEncodeToShards(&rows, dir, eopts);
  if (!stats.ok()) return fail(stats.status());
  const double encode_s = encode_timer.Elapsed();

  auto reader_or = StreamingReader::Open(
      dir, {.max_resident_shards =
                static_cast<size_t>(flags.GetInt("max-resident"))});
  if (!reader_or.ok()) return fail(reader_or.status());
  StreamingReader& reader = **reader_or;
  const size_t dataset_bytes = DatasetPayloadBytes(reader.manifest());

  report.Section("Streamed training: " + profile);
  std::printf("encoded %zu rows (%s on disk) in %.1fs (%.0f rows/s)\n",
              reader.num_rows(), HumanCount(dataset_bytes).c_str(), encode_s,
              static_cast<double>(reader.num_rows()) / encode_s);

  // --- Streamed arm. ---
  HyperParams hp = DefaultHyperParams(profile);
  ApplyOverrides(flags, &hp);
  StreamTrainOptions sopts;
  sopts.epochs = hp.epochs;
  sopts.batch_size = hp.batch_size;
  sopts.seed = hp.seed;
  sopts.patience = hp.early_stop_patience;
  sopts.verbose = flags.GetBool("verbose");
  sopts.order = flags.GetString("order") == "global"
                    ? StreamingBatcher::Order::kGlobalShuffle
                    : StreamingBatcher::Order::kWindowShuffle;
  sopts.prefetch_batches = static_cast<size_t>(flags.GetInt("prefetch"));
  sopts.window_blocks = static_cast<size_t>(flags.GetInt("window-blocks"));
  // Pin the shuffle block size so the in-RAM arm reproduces it exactly.
  sopts.block_rows = reader.manifest().rows_per_shard;

  auto fnn = FixedArchModel::MakeFnn(reader.meta(), hp);
  auto streamed = TrainModelStreamed(fnn.get(), &reader, sopts);
  if (!streamed.ok()) return fail(streamed.status());

  // Peak RSS before anything materializes the dataset in RAM.
  const size_t peak_rss = PeakRssBytes();
  char rss_extra[160];
  std::snprintf(rss_extra, sizeof(rss_extra),
                "peak RSS %s = %.1f%% of %s dataset",
                HumanCount(peak_rss).c_str(),
                dataset_bytes > 0 ? 100.0 * static_cast<double>(peak_rss) /
                                        static_cast<double>(dataset_bytes)
                                  : 0.0,
                HumanCount(dataset_bytes).c_str());
  report.AddRow("FNN/streamed", streamed->final_test.auc,
                streamed->final_test.logloss, fnn->ParamCount(),
                streamed->telemetry, rss_extra);
  report.AddRow("hash-encoder", 0.0, 0.0, 0, HashExtra(*stats));

  // --- In-RAM control arm (bitwise parity). ---
  if (flags.GetBool("parity")) {
    auto materialized = reader.Materialize();
    if (!materialized.ok()) return fail(materialized.status());
    auto fnn2 = FixedArchModel::MakeFnn(*materialized, hp);
    auto in_ram = TrainModelStreamed(fnn2.get(), *materialized, sopts);
    if (!in_ram.ok()) return fail(in_ram.status());
    const bool match = BitwiseEqual(*streamed, *in_ram);
    report.AddRow("FNN/in-RAM", in_ram->final_test.auc,
                  in_ram->final_test.logloss, fnn2->ParamCount(),
                  in_ram->telemetry,
                  match ? "bitwise MATCH vs streamed"
                        : "bitwise MISMATCH vs streamed");
    if (!match) {
      std::fprintf(stderr,
                   "stream_train: streamed and in-RAM runs diverged\n");
      return 1;
    }
  }
  return report.Finish();
}
