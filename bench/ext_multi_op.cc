// Multi-operation search-space extension (paper §II-C1): enlarge the
// per-pair candidate set from {memorize, Hadamard, naïve} to
// {memorize, Hadamard, inner product, naïve} and compare against the
// paper's 3-way search. The searched per-pair operators are re-trained
// with FixedArchModel's per-pair factorization functions.

#include <cstdio>

#include "bench_util.h"
#include "core/fixed_arch_model.h"
#include "core/multi_op_search.h"
#include "core/pipeline.h"

using namespace optinter;
using namespace optinter::bench;

int main(int argc, char** argv) {
  FlagParser flags;
  AddCommonFlags(&flags);
  int exit_code = 0;
  if (!ParseOrExit(&flags, argc, argv, &exit_code)) return exit_code;

  for (const auto& name : DatasetList(flags, {"criteo_like"})) {
    PrepareOptions popts;
    popts.rows_scale = flags.GetDouble("rows_scale");
    auto prepared = PrepareProfile(name, popts);
    if (!prepared.ok()) {
      std::fprintf(stderr, "%s: %s\n", name.c_str(),
                   prepared.status().ToString().c_str());
      return 1;
    }
    const PreparedDataset& p = *prepared;
    HyperParams hp = DefaultHyperParams(name);
    ApplyOverrides(flags, &hp);
    TrainOptions topts = MakeTrainOptions(flags, hp);

    PrintHeader("Multi-operation search space: " + name);

    // Baseline: the paper's 3-way search.
    {
      SearchOptions sopts;
      sopts.search_epochs = hp.search_epochs;
      sopts.verbose = flags.GetBool("verbose");
      OptInterResult r = RunOptInter(p.data, p.splits, hp, sopts, topts);
      PrintModelRow("OptInter(3way)", r.retrain.final_test.auc,
                    r.retrain.final_test.logloss, r.param_count,
                    ArchCountsToString(CountArchitecture(r.search.arch)));
    }

    // Extension: 4-way search with per-pair operator choice.
    {
      MultiOpSearchModel search(p.data, hp);
      Batcher batcher(&p.data, p.splits.train, hp.batch_size, hp.seed);
      const size_t epochs = hp.search_epochs;
      for (size_t epoch = 0; epoch < epochs; ++epoch) {
        const float frac = epochs > 1 ? static_cast<float>(epoch) /
                                            static_cast<float>(epochs - 1)
                                      : 1.0f;
        search.SetTemperature(hp.gumbel_temp_start +
                              frac * (hp.gumbel_temp_end -
                                      hp.gumbel_temp_start));
        batcher.StartEpoch();
        for (;;) {
          Batch b = batcher.Next();
          if (b.size == 0) break;
          search.TrainStep(b);
        }
      }
      MultiOpArchitecture arch = search.ExtractArchitecture();
      size_t hadamard = 0, inner = 0;
      for (size_t q = 0; q < arch.methods.size(); ++q) {
        if (arch.methods[q] == InterMethod::kFactorize) {
          (arch.fns[q] == FactorizeFn::kHadamard ? hadamard : inner)++;
        }
      }
      FixedArchModel model(p.data, arch.methods, hp, "OptInter-multiop",
                           /*memorized_triples=*/{}, arch.fns);
      TrainSummary s = TrainModel(&model, p.data, p.splits, topts);
      PrintModelRow(
          "OptInter(4way)", s.final_test.auc, s.final_test.logloss,
          model.ParamCount(),
          StrFormat("%s of which hadamard=%zu inner=%zu",
                    ArchCountsToString(CountArchitecture(arch.methods))
                        .c_str(),
                    hadamard, inner));
    }
  }
  return 0;
}
