// Structural tests for the deep baselines: parameter accounting
// relations between variants and framework-instance consistency.

#include <gtest/gtest.h>

#include "core/fixed_arch_model.h"
#include "models/deep_models.h"
#include "test_data.h"

namespace optinter {
namespace {

using testing::HeadBatch;
using testing::SharedTinyData;

HyperParams TinyHp() {
  HyperParams hp = DefaultHyperParams("tiny");
  hp.seed = 21;
  return hp;
}

size_t NumFields(const EncodedDataset& d) {
  return d.num_categorical() + d.num_continuous();
}

TEST(DeepParamTest, OpnnIsIpnnPlusKernels) {
  // OPNN and IPNN share the exact architecture except the per-pair
  // kernel matrices: Δparams = P · d².
  const auto& p = SharedTinyData();
  HyperParams hp = TinyHp();
  DeepBaselineModel ipnn(p.data, hp, DeepVariant::kIpnn);
  DeepBaselineModel opnn(p.data, hp, DeepVariant::kOpnn);
  const size_t fields = NumFields(p.data);
  const size_t pairs = fields * (fields - 1) / 2;
  EXPECT_EQ(opnn.ParamCount() - ipnn.ParamCount(),
            pairs * hp.embed_dim * hp.embed_dim);
}

TEST(DeepParamTest, DeepFmIsFnnPlusFirstOrder) {
  // DeepFM = FNN + first-order weights (one per vocab entry, plus one
  // per continuous field) + FM bias. The FM second-order term reuses the
  // shared embeddings, so it adds nothing.
  const auto& p = SharedTinyData();
  HyperParams hp = TinyHp();
  DeepBaselineModel fnn(p.data, hp, DeepVariant::kFnn);
  DeepBaselineModel deepfm(p.data, hp, DeepVariant::kDeepFm);
  const size_t first_order =
      p.data.TotalOrigVocab() + p.data.num_continuous();
  EXPECT_EQ(deepfm.ParamCount() - fnn.ParamCount(), first_order + 1);
}

TEST(DeepParamTest, PinAddsSubnetsAndWiderInput) {
  const auto& p = SharedTinyData();
  HyperParams hp = TinyHp();
  DeepBaselineModel fnn(p.data, hp, DeepVariant::kFnn);
  DeepBaselineModel pin(p.data, hp, DeepVariant::kPin);
  const size_t fields = NumFields(p.data);
  const size_t pairs = fields * (fields - 1) / 2;
  const size_t d = hp.embed_dim;
  const size_t subnet =
      (3 * d * kPinSubnetHidden + kPinSubnetHidden) +
      (kPinSubnetHidden * kPinSubnetOut + kPinSubnetOut);
  const size_t first_hidden = hp.mlp_hidden.front();
  EXPECT_EQ(pin.ParamCount() - fnn.ParamCount(),
            pairs * subnet + pairs * kPinSubnetOut * first_hidden);
}

TEST(DeepParamTest, IpnnWidensFnnInputByPairCount) {
  const auto& p = SharedTinyData();
  HyperParams hp = TinyHp();
  DeepBaselineModel fnn(p.data, hp, DeepVariant::kFnn);
  DeepBaselineModel ipnn(p.data, hp, DeepVariant::kIpnn);
  const size_t fields = NumFields(p.data);
  const size_t pairs = fields * (fields - 1) / 2;
  EXPECT_EQ(ipnn.ParamCount() - fnn.ParamCount(),
            pairs * hp.mlp_hidden.front());
}

TEST(DeepParamTest, FnnVariantsAgreeOnEmbeddingMass) {
  // The DeepBaselineModel FNN and the FixedArchModel all-naive instance
  // embed the same fields at the same width; their MLPs see the same
  // input, so parameter counts must coincide.
  const auto& p = SharedTinyData();
  HyperParams hp = TinyHp();
  DeepBaselineModel deep_fnn(p.data, hp, DeepVariant::kFnn);
  auto fixed_fnn = FixedArchModel::MakeFnn(p.data, hp);
  EXPECT_EQ(deep_fnn.ParamCount(), fixed_fnn->ParamCount());
}

TEST(DeepParamTest, FnnVariantsTrainToSimilarQuality) {
  // Same structure (different RNG consumption order): after identical
  // training, the two FNN implementations should land in the same AUC
  // neighbourhood on the same batch stream.
  const auto& p = SharedTinyData();
  HyperParams hp = TinyHp();
  DeepBaselineModel deep_fnn(p.data, hp, DeepVariant::kFnn);
  auto fixed_fnn = FixedArchModel::MakeFnn(p.data, hp);
  Batch b = HeadBatch(p, 512);
  float deep_last = 0.0f, fixed_last = 0.0f;
  for (int i = 0; i < 40; ++i) {
    deep_last = deep_fnn.TrainStep(b);
    fixed_last = fixed_fnn->TrainStep(b);
  }
  EXPECT_NEAR(deep_last, fixed_last, 0.08f);
}

TEST(DeepParamTest, NamesMatchVariants) {
  const auto& p = SharedTinyData();
  HyperParams hp = TinyHp();
  EXPECT_EQ(DeepBaselineModel(p.data, hp, DeepVariant::kIpnn).Name(),
            "IPNN");
  EXPECT_EQ(DeepBaselineModel(p.data, hp, DeepVariant::kOpnn).Name(),
            "OPNN");
  EXPECT_EQ(DeepBaselineModel(p.data, hp, DeepVariant::kDeepFm).Name(),
            "DeepFM");
  EXPECT_EQ(DeepBaselineModel(p.data, hp, DeepVariant::kPin).Name(),
            "PIN");
}

}  // namespace
}  // namespace optinter
