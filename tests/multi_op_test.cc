// Tests for the multi-operation search-space extension.

#include <gtest/gtest.h>

#include "core/fixed_arch_model.h"
#include "core/multi_op_search.h"
#include "test_data.h"
#include "train/trainer.h"

namespace optinter {
namespace {

using testing::HeadBatch;
using testing::SharedTinyData;

HyperParams TinyHp() {
  HyperParams hp = DefaultHyperParams("tiny");
  hp.seed = 55;
  return hp;
}

TEST(MultiOpSearchTest, DefaultHasFourCandidates) {
  const auto& p = SharedTinyData();
  MultiOpSearchModel model(p.data, TinyHp());
  EXPECT_EQ(model.num_candidates(), 4u);
}

TEST(MultiOpSearchTest, TrainsAndExtracts) {
  const auto& p = SharedTinyData();
  MultiOpSearchModel model(p.data, TinyHp());
  Batch b = HeadBatch(p, 256);
  float first = 0.0f, last = 0.0f;
  for (int i = 0; i < 20; ++i) {
    const float loss = model.TrainStep(b);
    ASSERT_TRUE(std::isfinite(loss));
    if (i == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first);
  MultiOpArchitecture arch = model.ExtractArchitecture();
  EXPECT_EQ(arch.methods.size(), p.data.num_pairs());
  EXPECT_EQ(arch.fns.size(), p.data.num_pairs());
}

TEST(MultiOpSearchTest, PredictionsValid) {
  const auto& p = SharedTinyData();
  MultiOpSearchModel model(p.data, TinyHp());
  Batch b = HeadBatch(p, 64);
  std::vector<float> probs;
  model.Predict(b, &probs);
  for (float q : probs) {
    EXPECT_GT(q, 0.0f);
    EXPECT_LT(q, 1.0f);
  }
}

TEST(MultiOpSearchTest, StateCoversEveryParameter) {
  const auto& p = SharedTinyData();
  MultiOpSearchModel model(p.data, TinyHp());
  std::vector<Tensor*> state;
  model.CollectState(&state);
  size_t total = 0;
  for (Tensor* t : state) total += t->size();
  EXPECT_EQ(total, model.ParamCount());
}

TEST(MultiOpSearchTest, SingleFnReducesToThreeWay) {
  const auto& p = SharedTinyData();
  MultiOpSearchModel model(p.data, TinyHp(), {FactorizeFn::kHadamard});
  EXPECT_EQ(model.num_candidates(), 3u);
  MultiOpArchitecture arch = model.ExtractArchitecture();
  for (size_t q = 0; q < arch.fns.size(); ++q) {
    EXPECT_EQ(arch.fns[q], FactorizeFn::kHadamard);
  }
}

TEST(MultiOpSearchTest, SearchedArchRetrainsWithPerPairFns) {
  const auto& p = SharedTinyData();
  HyperParams hp = TinyHp();
  MultiOpSearchModel search(p.data, hp);
  Batch b = HeadBatch(p, 256);
  for (int i = 0; i < 30; ++i) search.TrainStep(b);
  MultiOpArchitecture arch = search.ExtractArchitecture();

  FixedArchModel model(p.data, arch.methods, hp, "multi",
                       /*memorized_triples=*/{}, arch.fns);
  TrainOptions topts;
  topts.epochs = 2;
  topts.batch_size = 256;
  topts.seed = hp.seed;
  topts.patience = 0;
  TrainSummary s = TrainModel(&model, p.data, p.splits, topts);
  EXPECT_GT(s.final_test.auc, 0.55);
}

TEST(FixedArchPerPairFnTest, MixedFnsChangeLayoutAndWidth) {
  const auto& p = SharedTinyData();
  HyperParams hp = TinyHp();
  Architecture arch = AllFactorize(p.data.num_pairs());
  std::vector<FactorizeFn> fns(p.data.num_pairs(),
                               FactorizeFn::kInnerProduct);
  fns[0] = FactorizeFn::kHadamard;
  FixedArchModel mixed(p.data, arch, hp, "mixed", {}, fns);
  FixedArchModel all_inner(
      p.data, arch, hp, "inner", {},
      std::vector<FactorizeFn>(p.data.num_pairs(),
                               FactorizeFn::kInnerProduct));
  // One Hadamard pair widens the MLP input by (s1 - 1) columns.
  const size_t first_hidden = hp.mlp_hidden.front();
  EXPECT_EQ(mixed.ParamCount() - all_inner.ParamCount(),
            (hp.embed_dim - 1) * first_hidden);

  Batch b = HeadBatch(p, 128);
  float first = 0.0f, last = 0.0f;
  for (int i = 0; i < 20; ++i) {
    const float loss = mixed.TrainStep(b);
    ASSERT_TRUE(std::isfinite(loss));
    if (i == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first);
}

}  // namespace
}  // namespace optinter
