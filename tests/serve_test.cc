// Serving-layer tests: request validation, snapshot deploy/hot-swap,
// batch-1 fused path, micro-batching, and the concurrent-clients-during-
// swap workload (the TSan job runs this binary too — any torn read or
// data race in the snapshot exchange shows up there).

#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <future>
#include <memory>
#include <thread>
#include <vector>

#include "core/fixed_arch_model.h"
#include "io/serialize.h"
#include "obs/registry.h"
#include "serve/request.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "test_data.h"

namespace optinter {
namespace {

using serve::CheckServable;
using serve::ModelSnapshot;
using serve::PredictRequest;
using serve::PredictServer;
using serve::RequestArena;
using serve::RequestFromRow;
using serve::ServeOptions;
using serve::SnapshotSlot;
using serve::SwapFromCheckpoint;
using testing::SharedTinyData;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

HyperParams TinyHp() {
  HyperParams hp = DefaultHyperParams("tiny");
  hp.seed = 77;
  return hp;
}

/// Trains a fresh OptInter-M for `steps` steps on the head of the train
/// split. Same hp/seed → identical construction, so checkpoints from any
/// of these load into any other.
std::unique_ptr<FixedArchModel> TrainedModel(int steps) {
  const auto& p = SharedTinyData();
  auto model = FixedArchModel::MakeOptInterM(p.data, TinyHp());
  Batch b = testing::HeadBatch(p, 128);
  for (int i = 0; i < steps; ++i) model->TrainStep(b);
  return model;
}

/// A CtrModel WITHOUT the re-entrant Predict overload, as every model
/// predating the re-entrancy contract looks to the serving layer.
class NonReentrantModel : public CtrModel {
 public:
  std::string Name() const override { return "LegacyModel"; }
  float TrainStep(const Batch&) override { return 0.0f; }
  void Predict(const Batch& batch, std::vector<float>* probs) override {
    probs->assign(batch.size, 0.5f);
  }
  size_t ParamCount() const override { return 0; }
};

TEST(RequestArenaTest, RoundTripsRow) {
  const auto& p = SharedTinyData();
  RequestArena arena(p.data);
  const size_t row = p.splits.train[3];
  ASSERT_TRUE(arena.Append(RequestFromRow(p.data, row)).ok());
  EXPECT_EQ(arena.size(), 1u);
  const Batch b = arena.MakeBatch();
  ASSERT_EQ(b.size, 1u);
  for (size_t f = 0; f < p.data.num_categorical(); ++f) {
    EXPECT_EQ(b.data->cat(0, f), p.data.cat(row, f));
  }
  for (size_t f = 0; f < p.data.num_continuous(); ++f) {
    EXPECT_EQ(b.data->cont(0, f), p.data.cont(row, f));
  }
  for (size_t pr = 0; pr < p.data.num_pairs(); ++pr) {
    EXPECT_EQ(b.data->cross(0, pr), p.data.cross(row, pr));
  }
}

TEST(RequestArenaTest, RejectsFieldCountMismatch) {
  const auto& p = SharedTinyData();
  RequestArena arena(p.data);
  PredictRequest req = RequestFromRow(p.data, p.splits.train[0]);
  req.cat_ids.pop_back();
  Status st = arena.Append(req);
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(arena.size(), 0u);  // arena unchanged on rejection

  req = RequestFromRow(p.data, p.splits.train[0]);
  req.cross_ids.clear();
  EXPECT_EQ(arena.Append(req).code(), StatusCode::kInvalidArgument);
}

TEST(RequestArenaTest, RejectsOutOfVocabIds) {
  const auto& p = SharedTinyData();
  RequestArena arena(p.data);
  PredictRequest req = RequestFromRow(p.data, p.splits.train[0]);
  req.cat_ids[1] = static_cast<int32_t>(p.data.cat_vocab_sizes[1]);
  Status st = arena.Append(req);
  EXPECT_EQ(st.code(), StatusCode::kOutOfRange);
  // The message names the offending field so the caller can fix its
  // encoder, not just "bad request".
  EXPECT_NE(st.message().find("field 1"), std::string::npos);
  EXPECT_EQ(arena.size(), 0u);

  req = RequestFromRow(p.data, p.splits.train[0]);
  req.cross_ids[0] = -1;
  EXPECT_EQ(arena.Append(req).code(), StatusCode::kOutOfRange);
}

TEST(SnapshotTest, RejectsNonReentrantModelUpFront) {
  auto legacy = std::make_shared<const NonReentrantModel>();
  Status st = CheckServable(*legacy);
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_NE(st.message().find("re-entrant"), std::string::npos);

  SnapshotSlot slot;
  EXPECT_EQ(slot.Publish(legacy).code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(slot.Acquire(), nullptr);
  EXPECT_EQ(slot.version(), 0u);
}

TEST(SnapshotTest, PublishBumpsVersionAndPinsOldSnapshot) {
  SnapshotSlot slot;
  std::shared_ptr<const CtrModel> a = TrainedModel(1);
  std::shared_ptr<const CtrModel> b = TrainedModel(2);
  ASSERT_TRUE(slot.Publish(a).ok());
  EXPECT_EQ(slot.version(), 1u);
  std::shared_ptr<const ModelSnapshot> pinned = slot.Acquire();
  ASSERT_TRUE(slot.Publish(b).ok());
  EXPECT_EQ(slot.version(), 2u);
  // The pinned generation stays whole and alive across the swap.
  EXPECT_EQ(pinned->version, 1u);
  EXPECT_EQ(pinned->model.get(), a.get());
  EXPECT_EQ(slot.Acquire()->model.get(), b.get());
}

TEST(SnapshotTest, SwapFromBadCheckpointKeepsOldModelLive) {
  const auto& p = SharedTinyData();
  SnapshotSlot slot;
  std::shared_ptr<const CtrModel> a = TrainedModel(1);
  ASSERT_TRUE(slot.Publish(a).ok());

  auto factory = [&]() -> std::unique_ptr<CtrModel> {
    return FixedArchModel::MakeOptInterM(p.data, TinyHp());
  };
  Status st = SwapFromCheckpoint(&slot, factory,
                                 TempPath("no_such_checkpoint.bin"));
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(slot.version(), 1u);
  EXPECT_EQ(slot.Acquire()->model.get(), a.get());
}

TEST(FusedSingleRowTest, BitwiseMatchesGenericPath) {
  const auto& p = SharedTinyData();
  auto model = TrainedModel(5);
  ForwardContext ctx_fused, ctx_generic;
  std::vector<float> fused, generic;
  for (size_t k = 0; k < 32; ++k) {
    const size_t row = p.splits.test[k];
    Batch b;
    b.data = &p.data;
    b.rows = &row;
    b.size = 1;
    model->set_fuse_single_row(true);
    const CtrModel& cm = *model;
    cm.Predict(b, &fused, &ctx_fused);
    model->set_fuse_single_row(false);
    cm.Predict(b, &generic, &ctx_generic);
    model->set_fuse_single_row(true);
    ASSERT_EQ(fused.size(), 1u);
    // Bit-identical, not just close: the fused path must be a pure
    // reordering of memory traffic, never of arithmetic.
    EXPECT_EQ(fused[0], generic[0]) << "row " << row;
  }
}

TEST(PredictServerTest, RejectsBeforeDeployAndBadRequests) {
  const auto& p = SharedTinyData();
  PredictServer server(p.data);
  PredictRequest req = RequestFromRow(p.data, p.splits.train[0]);
  EXPECT_EQ(server.PredictNow(req).status().code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(server.Submit(req).status().code(),
            StatusCode::kFailedPrecondition);

  ASSERT_TRUE(server.Deploy(TrainedModel(1)).ok());
  req.cat_ids[0] = -5;
  EXPECT_EQ(server.PredictNow(req).status().code(), StatusCode::kOutOfRange);
  EXPECT_EQ(server.Submit(req).status().code(), StatusCode::kOutOfRange);
}

TEST(PredictServerTest, DeployRejectsNonReentrantModel) {
  const auto& p = SharedTinyData();
  PredictServer server(p.data);
  Status st = server.Deploy(std::make_shared<const NonReentrantModel>());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(server.DeployedVersion(), 0u);
}

TEST(PredictServerTest, PredictNowMatchesDirectPredictBitwise) {
  const auto& p = SharedTinyData();
  auto model = TrainedModel(5);
  const FixedArchModel* raw = model.get();
  PredictServer server(p.data);
  ASSERT_TRUE(server.Deploy(std::move(model)).ok());
  ForwardContext ctx;
  std::vector<float> direct;
  for (size_t k = 0; k < 32; ++k) {
    const size_t row = p.splits.test[k];
    Batch b;
    b.data = &p.data;
    b.rows = &row;
    b.size = 1;
    static_cast<const CtrModel*>(raw)->Predict(b, &direct, &ctx);
    Result<float> served = server.PredictNow(RequestFromRow(p.data, row));
    ASSERT_TRUE(served.ok()) << served.status().ToString();
    EXPECT_EQ(*served, direct[0]) << "row " << row;
  }
}

TEST(PredictServerTest, SubmitCoalescesAndMatchesBatchPredict) {
  const auto& p = SharedTinyData();
  auto model = TrainedModel(5);
  const FixedArchModel* raw = model.get();
  ServeOptions opts;
  opts.max_batch = 16;
  opts.flush_deadline_us = 2000;
  PredictServer server(p.data, opts);
  ASSERT_TRUE(server.Deploy(std::move(model)).ok());

  constexpr size_t kN = 48;
  std::vector<std::future<float>> futures;
  for (size_t k = 0; k < kN; ++k) {
    auto fut = server.Submit(RequestFromRow(p.data, p.splits.test[k]));
    ASSERT_TRUE(fut.ok()) << fut.status().ToString();
    futures.push_back(std::move(*fut));
  }
  server.Drain();
  EXPECT_EQ(server.pending(), 0u);

  Batch b;
  b.data = &p.data;
  b.rows = p.splits.test.data();
  b.size = kN;
  ForwardContext ctx;
  std::vector<float> direct;
  static_cast<const CtrModel*>(raw)->Predict(b, &direct, &ctx);
  for (size_t k = 0; k < kN; ++k) {
    // Micro-batch boundaries differ from the reference batch, so equality
    // holds only to the batching-invariance tolerance (see
    // EvaluateBatchingInvariant in train_test).
    EXPECT_NEAR(futures[k].get(), direct[k], 1e-6) << "row " << k;
  }
}

TEST(PredictServerTest, DeadlineFlushesPartialBatch) {
  const auto& p = SharedTinyData();
  ServeOptions opts;
  opts.max_batch = 1024;  // never fills; only the deadline can flush
  opts.flush_deadline_us = 500;
  PredictServer server(p.data, opts);
  ASSERT_TRUE(server.Deploy(TrainedModel(1)).ok());
  auto fut = server.Submit(RequestFromRow(p.data, p.splits.train[0]));
  ASSERT_TRUE(fut.ok());
  EXPECT_EQ(fut->wait_for(std::chrono::seconds(30)),
            std::future_status::ready);
  server.Drain();
  EXPECT_EQ(server.pending(), 0u);
}

TEST(PredictServerTest, BackpressureRejectsWhenQueueFull) {
  const auto& p = SharedTinyData();
  ServeOptions opts;
  opts.max_batch = 1024;
  opts.flush_deadline_us = 200000;  // hold the queue long enough to fill
  opts.max_pending = 4;
  PredictServer server(p.data, opts);
  ASSERT_TRUE(server.Deploy(TrainedModel(1)).ok());
  std::vector<std::future<float>> futures;
  bool saw_reject = false;
  for (size_t k = 0; k < 64; ++k) {
    auto fut = server.Submit(RequestFromRow(p.data, p.splits.train[0]));
    if (fut.ok()) {
      futures.push_back(std::move(*fut));
    } else {
      EXPECT_EQ(fut.status().code(), StatusCode::kFailedPrecondition);
      saw_reject = true;
      break;
    }
  }
  EXPECT_TRUE(saw_reject);
  server.Drain();
}

TEST(PredictServerTest, CheckpointRoundTripServesIdenticalProbabilities) {
  const auto& p = SharedTinyData();
  const std::string ckpt = TempPath("serve_roundtrip.ckpt");
  auto model = TrainedModel(8);
  ASSERT_TRUE(SaveModel(model.get(), ckpt).ok());

  PredictServer server(p.data);
  ASSERT_TRUE(server.Deploy(std::move(model)).ok());
  EXPECT_EQ(server.DeployedVersion(), 1u);
  std::vector<float> before;
  for (size_t k = 0; k < 16; ++k) {
    auto r = server.PredictNow(RequestFromRow(p.data, p.splits.test[k]));
    ASSERT_TRUE(r.ok());
    before.push_back(*r);
  }
  // Hot-swap to a FRESH model restored from the same checkpoint: the
  // serialize → reload → serve round trip must be bitwise lossless.
  ASSERT_TRUE(server
                  .DeployCheckpoint(
                      [&]() -> std::unique_ptr<CtrModel> {
                        return FixedArchModel::MakeOptInterM(p.data,
                                                             TinyHp());
                      },
                      ckpt)
                  .ok());
  EXPECT_EQ(server.DeployedVersion(), 2u);
  for (size_t k = 0; k < 16; ++k) {
    auto r = server.PredictNow(RequestFromRow(p.data, p.splits.test[k]));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, before[k]) << "row " << k;
  }
}

// The hot-swap contract under fire: clients hammer PredictNow and Submit
// while another thread swaps between two checkpoints. Every returned
// probability must EXACTLY equal one whole generation's answer for that
// row — any blend of generations (torn read) fails the membership check,
// and TSan checks the same workload for data races in CI.
TEST(PredictServerTest, ConcurrentClientsSeeOnlyWholeSnapshots) {
  const auto& p = SharedTinyData();
  const std::string ckpt_a = TempPath("swap_a.ckpt");
  const std::string ckpt_b = TempPath("swap_b.ckpt");
  {
    auto a = TrainedModel(3);
    ASSERT_TRUE(SaveModel(a.get(), ckpt_a).ok());
    auto b = TrainedModel(12);
    ASSERT_TRUE(SaveModel(b.get(), ckpt_b).ok());
  }
  auto factory = [&]() -> std::unique_ptr<CtrModel> {
    return FixedArchModel::MakeOptInterM(p.data, TinyHp());
  };

  constexpr size_t kRows = 24;
  // max_batch 1 keeps every flush at batch size 1, so Submit results are
  // bitwise comparable to the per-generation references below.
  ServeOptions opts;
  opts.max_batch = 1;
  opts.flush_deadline_us = 0;
  PredictServer server(p.data, opts);
  ASSERT_TRUE(server.DeployCheckpoint(factory, ckpt_a).ok());
  std::vector<float> pa(kRows), pb(kRows);
  for (size_t k = 0; k < kRows; ++k) {
    auto r = server.PredictNow(RequestFromRow(p.data, p.splits.test[k]));
    ASSERT_TRUE(r.ok());
    pa[k] = *r;
  }
  ASSERT_TRUE(server.DeployCheckpoint(factory, ckpt_b).ok());
  for (size_t k = 0; k < kRows; ++k) {
    auto r = server.PredictNow(RequestFromRow(p.data, p.splits.test[k]));
    ASSERT_TRUE(r.ok());
    pb[k] = *r;
  }
  // The two generations must actually disagree somewhere, or the
  // membership check below would be vacuous.
  bool differs = false;
  for (size_t k = 0; k < kRows; ++k) differs |= pa[k] != pb[k];
  ASSERT_TRUE(differs);

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  auto client = [&](bool use_submit) {
    for (int iter = 0; !stop.load(std::memory_order_relaxed); ++iter) {
      const size_t k = static_cast<size_t>(iter) % kRows;
      const PredictRequest req = RequestFromRow(p.data, p.splits.test[k]);
      float prob;
      if (use_submit) {
        auto fut = server.Submit(req);
        if (!fut.ok()) continue;  // backpressure is allowed, tearing isn't
        prob = fut->get();
      } else {
        auto r = server.PredictNow(req);
        if (!r.ok()) {
          errors.fetch_add(1);
          continue;
        }
        prob = *r;
      }
      if (prob != pa[k] && prob != pb[k]) errors.fetch_add(1);
    }
  };
  std::vector<std::thread> clients;
  clients.emplace_back(client, false);
  clients.emplace_back(client, false);
  clients.emplace_back(client, true);
  int swaps_done = 0;
  for (int s = 0; s < 10; ++s) {
    Status st =
        server.DeployCheckpoint(factory, s % 2 == 0 ? ckpt_b : ckpt_a);
    EXPECT_TRUE(st.ok()) << st.ToString();
    swaps_done += st.ok() ? 1 : 0;
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (auto& t : clients) t.join();
  server.Drain();
  EXPECT_EQ(errors.load(), 0);
  EXPECT_EQ(swaps_done, 10);
  EXPECT_GE(server.DeployedVersion(), 12u);
}

TEST(PredictServerTest, ConcurrentClientsSurviveQuantizedHotSwap) {
  // Hot-swap between an fp32 snapshot and its int8-quantized counterpart
  // while clients hammer both request paths: every answer must belong to
  // exactly one generation (no torn reads mixing fp32 and quantized
  // state). The TSan job runs this binary, so a racy publish shows up.
  const auto& p = SharedTinyData();
  std::shared_ptr<const CtrModel> fp32(TrainedModel(5));
  std::shared_ptr<const CtrModel> quant;
  ASSERT_TRUE(
      serve::QuantizeSnapshot(fp32, QuantMode::kInt8, &quant).ok());

  constexpr size_t kRows = 24;
  ServeOptions opts;
  opts.max_batch = 1;
  opts.flush_deadline_us = 0;
  PredictServer server(p.data, opts);

  // Per-generation references (single-threaded, before the load starts).
  ASSERT_TRUE(server.Deploy(fp32).ok());
  std::vector<float> pf(kRows), pq(kRows);
  for (size_t k = 0; k < kRows; ++k) {
    auto r = server.PredictNow(RequestFromRow(p.data, p.splits.test[k]));
    ASSERT_TRUE(r.ok());
    pf[k] = *r;
  }
  ASSERT_TRUE(server.Deploy(quant).ok());
  for (size_t k = 0; k < kRows; ++k) {
    auto r = server.PredictNow(RequestFromRow(p.data, p.splits.test[k]));
    ASSERT_TRUE(r.ok());
    pq[k] = *r;
  }
  bool differs = false;
  for (size_t k = 0; k < kRows; ++k) differs |= pf[k] != pq[k];
  ASSERT_TRUE(differs);  // otherwise membership below is vacuous

  std::atomic<bool> stop{false};
  std::atomic<int> errors{0};
  auto client = [&](bool use_submit) {
    for (int iter = 0; !stop.load(std::memory_order_relaxed); ++iter) {
      const size_t k = static_cast<size_t>(iter) % kRows;
      const PredictRequest req = RequestFromRow(p.data, p.splits.test[k]);
      float prob;
      if (use_submit) {
        auto fut = server.Submit(req);
        if (!fut.ok()) continue;  // backpressure is allowed, tearing isn't
        prob = fut->get();
      } else {
        auto r = server.PredictNow(req);
        if (!r.ok()) {
          errors.fetch_add(1);
          continue;
        }
        prob = *r;
      }
      if (prob != pf[k] && prob != pq[k]) errors.fetch_add(1);
    }
  };
  std::vector<std::thread> clients;
  clients.emplace_back(client, false);
  clients.emplace_back(client, false);
  clients.emplace_back(client, true);
  for (int s = 0; s < 10; ++s) {
    Status st = server.Deploy(s % 2 == 0 ? fp32 : quant);
    EXPECT_TRUE(st.ok()) << st.ToString();
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  }
  stop.store(true);
  for (auto& t : clients) t.join();
  server.Drain();
  EXPECT_EQ(errors.load(), 0);
}

TEST(ServeMetricsTest, LatencyHistogramFeedsQuantiles) {
  const auto& p = SharedTinyData();
  PredictServer server(p.data);
  ASSERT_TRUE(server.Deploy(TrainedModel(1)).ok());
  for (size_t k = 0; k < 8; ++k) {
    ASSERT_TRUE(
        server.PredictNow(RequestFromRow(p.data, p.splits.train[k])).ok());
  }
  obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "serve.latency_us", {10, 20, 50, 100, 200, 500, 1000, 2000, 5000,
                           10000, 20000, 50000, 100000});
  EXPECT_GE(h->count(), 8u);
  const double p50 = h->Quantile(0.5);
  const double p99 = h->Quantile(0.99);
  EXPECT_GT(p50, 0.0);
  EXPECT_GE(p99, p50);
}

}  // namespace
}  // namespace optinter
