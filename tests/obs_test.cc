// Tests for the observability layer: JSON value round-trips, the metrics
// registry under concurrent pool increments, trace-span nesting and merge
// determinism, run-report serialization, search-dynamics capture, and the
// logging satellites (env-level parsing, line prefix format).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/pipeline.h"
#include "obs/json.h"
#include "obs/registry.h"
#include "obs/run_report.h"
#include "obs/search_dynamics.h"
#include "obs/trace.h"
#include "synth/prepare.h"
#include "train/trainer.h"

namespace optinter {
namespace {

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

TEST(JsonTest, SerializeScalars) {
  EXPECT_EQ(obs::JsonValue::Null().Serialize(), "null");
  EXPECT_EQ(obs::JsonValue::Bool(true).Serialize(), "true");
  EXPECT_EQ(obs::JsonValue::Bool(false).Serialize(), "false");
  EXPECT_EQ(obs::JsonValue::Int(-42).Serialize(), "-42");
  EXPECT_EQ(obs::JsonValue::Uint(7).Serialize(), "7");
  EXPECT_EQ(obs::JsonValue::Str("hi").Serialize(), "\"hi\"");
}

TEST(JsonTest, EscapesControlAndQuoteCharacters) {
  const std::string s = obs::JsonValue::Str("a\"b\\c\n\t\x01").Serialize();
  EXPECT_EQ(s, "\"a\\\"b\\\\c\\n\\t\\u0001\"");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  obs::JsonValue obj = obs::JsonValue::MakeObject();
  obj.Set("zebra", obs::JsonValue::Int(1));
  obj.Set("alpha", obs::JsonValue::Int(2));
  EXPECT_EQ(obj.Serialize(), "{\"zebra\":1,\"alpha\":2}");
  // Re-setting a key keeps its position.
  obj.Set("zebra", obs::JsonValue::Int(3));
  EXPECT_EQ(obj.Serialize(), "{\"zebra\":3,\"alpha\":2}");
}

TEST(JsonTest, ParseRoundTrip) {
  obs::JsonValue obj = obs::JsonValue::MakeObject();
  obj.Set("name", obs::JsonValue::Str("run \"x\"\n"));
  obj.Set("n", obs::JsonValue::Int(-5));
  obj.Set("pi", obs::JsonValue::Double(3.25));
  obj.Set("ok", obs::JsonValue::Bool(true));
  obj.Set("nothing", obs::JsonValue::Null());
  obs::JsonValue arr = obs::JsonValue::MakeArray();
  arr.Push(obs::JsonValue::Int(1));
  arr.Push(obs::JsonValue::Str("two"));
  obj.Set("items", std::move(arr));

  for (const int indent : {-1, 0, 2}) {
    const std::string text = obj.Serialize(indent);
    obs::JsonValue parsed;
    std::string error;
    ASSERT_TRUE(obs::JsonValue::Parse(text, &parsed, &error)) << error;
    EXPECT_EQ(parsed, obj) << text;
  }
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  obs::JsonValue out;
  std::string error;
  EXPECT_FALSE(obs::JsonValue::Parse("{", &out, &error));
  EXPECT_FALSE(obs::JsonValue::Parse("[1,]", &out, &error));
  EXPECT_FALSE(obs::JsonValue::Parse("\"unterminated", &out, &error));
  EXPECT_FALSE(obs::JsonValue::Parse("1 trailing", &out, &error));
  EXPECT_FALSE(obs::JsonValue::Parse("", &out, &error));
}

TEST(JsonTest, ParseUnicodeEscapes) {
  obs::JsonValue out;
  std::string error;
  ASSERT_TRUE(obs::JsonValue::Parse("\"\\u0041\\u00e9\"", &out, &error))
      << error;
  EXPECT_EQ(out.string_value(), "A\xc3\xa9");
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(RegistryTest, CounterAccumulatesAcrossConcurrentPoolTasks) {
  obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("test.concurrent_counter");
  c->Reset();
  ThreadPool pool(4);
  constexpr size_t kTasks = 64;
  constexpr size_t kPerTask = 1000;
  for (size_t t = 0; t < kTasks; ++t) {
    pool.Submit([c] {
      for (size_t i = 0; i < kPerTask; ++i) c->Add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(c->Value(), kTasks * kPerTask);
}

TEST(RegistryTest, GetReturnsSamePointerForSameName) {
  auto& reg = obs::MetricsRegistry::Global();
  EXPECT_EQ(reg.GetCounter("test.same"), reg.GetCounter("test.same"));
  EXPECT_EQ(reg.GetGauge("test.same_gauge"),
            reg.GetGauge("test.same_gauge"));
  EXPECT_EQ(reg.GetHistogram("test.same_hist", {1.0}),
            reg.GetHistogram("test.same_hist", {1.0}));
}

TEST(RegistryDeathTest, HistogramBoundsMismatchAborts) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetHistogram("test.bounds_mismatch", {1.0, 2.0});
  EXPECT_DEATH(reg.GetHistogram("test.bounds_mismatch", {1.0, 3.0}),
               "different upper_bounds");
}

TEST(RegistryTest, HistogramBucketEdges) {
  obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "test.bucket_edges", {1.0, 2.0, 4.0});
  h->Reset();
  // Bucket i counts bounds[i-1] < v <= bounds[i]; the upper bound is
  // inclusive.
  h->Observe(0.5);  // bucket 0
  h->Observe(1.0);  // bucket 0 (inclusive upper edge)
  h->Observe(1.5);  // bucket 1
  h->Observe(2.0);  // bucket 1
  h->Observe(4.0);  // bucket 2
  h->Observe(5.0);  // overflow
  ASSERT_EQ(h->num_buckets(), 4u);
  EXPECT_EQ(h->bucket_count(0), 2u);
  EXPECT_EQ(h->bucket_count(1), 2u);
  EXPECT_EQ(h->bucket_count(2), 1u);
  EXPECT_EQ(h->bucket_count(3), 1u);
  EXPECT_EQ(h->count(), 6u);
  EXPECT_DOUBLE_EQ(h->sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 5.0);
}

TEST(RegistryTest, HistogramQuantileInterpolates) {
  obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "test.quantile", {10.0, 20.0, 40.0});
  h->Reset();
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 0.0);  // empty histogram
  // 8 observations in (0, 10], 2 in (10, 20].
  for (int i = 0; i < 8; ++i) h->Observe(5.0);
  for (int i = 0; i < 2; ++i) h->Observe(15.0);
  // p50: rank 5 of 8 in bucket (0, 10] → 10 * 5/8.
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 10.0 * 5.0 / 8.0);
  // p90: rank 9 lands on the first of 2 observations in (10, 20].
  EXPECT_DOUBLE_EQ(h->Quantile(0.9), 10.0 + 10.0 * 1.0 / 2.0);
  EXPECT_DOUBLE_EQ(h->Quantile(1.0), 20.0);
  // Out-of-range q clamps.
  EXPECT_DOUBLE_EQ(h->Quantile(-1.0), h->Quantile(0.0));
  // Overflow-bucket observations report the last finite bound as a floor.
  h->Reset();
  h->Observe(1000.0);
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 40.0);
}

TEST(RegistryTest, GaugeSetAndAdd) {
  obs::Gauge* g = obs::MetricsRegistry::Global().GetGauge("test.gauge");
  g->Set(2.5);
  EXPECT_DOUBLE_EQ(g->Value(), 2.5);
  g->Add(1.25);
  EXPECT_DOUBLE_EQ(g->Value(), 3.75);
  g->Reset();
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
}

TEST(RegistryTest, ToJsonContainsRegisteredMetrics) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("test.json_counter")->Reset();
  reg.GetCounter("test.json_counter")->Add(3);
  obs::Histogram* h = reg.GetHistogram("test.json_hist", {10.0});
  h->Reset();
  h->Observe(4.0);
  const obs::JsonValue snapshot = reg.ToJson();
  const obs::JsonValue* counters = snapshot.Find("counters");
  ASSERT_NE(counters, nullptr);
  const obs::JsonValue* c = counters->Find("test.json_counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->int_value(), 3);
  const obs::JsonValue* hists = snapshot.Find("histograms");
  ASSERT_NE(hists, nullptr);
  const obs::JsonValue* hj = hists->Find("test.json_hist");
  ASSERT_NE(hj, nullptr);
  ASSERT_NE(hj->Find("bucket_counts"), nullptr);
  EXPECT_EQ(hj->Find("bucket_counts")->at(0).int_value(), 1);
  EXPECT_EQ(hj->Find("count")->int_value(), 1);
}

TEST(RegistryTest, EnabledToggle) {
  EXPECT_TRUE(obs::Enabled());  // default on (no OPTINTER_OBS in tests)
  obs::SetEnabled(false);
  EXPECT_FALSE(obs::Enabled());
  obs::SetEnabled(true);
  EXPECT_TRUE(obs::Enabled());
}

// ---------------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------------

/// Child of `p` named `name`, or nullptr.
const obs::SpanProfile* FindChild(const obs::SpanProfile& p,
                                  const std::string& name) {
  for (const obs::SpanProfile& c : p.children) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

TEST(TraceTest, NestedSpansBuildHierarchicalProfile) {
  obs::Tracer::Reset();
  {
    OPTINTER_TRACE_SPAN("outer_a");
    {
      OPTINTER_TRACE_SPAN("inner_b");
    }
    {
      OPTINTER_TRACE_SPAN("inner_b");
    }
    {
      OPTINTER_TRACE_SPAN("inner_c");
    }
  }
  const obs::SpanProfile profile = obs::Tracer::Collect();
  EXPECT_EQ(profile.name, "run");
  const obs::SpanProfile* a = FindChild(profile, "outer_a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->count, 1u);
  const obs::SpanProfile* b = FindChild(*a, "inner_b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->count, 2u);
  const obs::SpanProfile* c = FindChild(*a, "inner_c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->count, 1u);
  // Children must contain the parent's time (parent covers them).
  EXPECT_GE(a->total_ns, b->total_ns + c->total_ns);
}

TEST(TraceTest, CollectIsDeterministicAndSorted) {
  obs::Tracer::Reset();
  {
    OPTINTER_TRACE_SPAN("z_span");
  }
  {
    OPTINTER_TRACE_SPAN("a_span");
  }
  const obs::SpanProfile first = obs::Tracer::Collect();
  const obs::SpanProfile second = obs::Tracer::Collect();
  // Collect is read-only: two collections agree exactly.
  EXPECT_EQ(obs::Tracer::ToJson(first).Serialize(),
            obs::Tracer::ToJson(second).Serialize());
  // Children sorted by name.
  for (size_t i = 1; i < first.children.size(); ++i) {
    EXPECT_LT(first.children[i - 1].name, first.children[i].name);
  }
}

TEST(TraceTest, SpansFromPoolThreadsMergeByName) {
  obs::Tracer::Reset();
  ThreadPool pool(3);
  for (int t = 0; t < 9; ++t) {
    pool.Submit([] { OPTINTER_TRACE_SPAN("pool_span"); });
  }
  pool.Wait();
  const obs::SpanProfile profile = obs::Tracer::Collect();
  const obs::SpanProfile* merged = FindChild(profile, "pool_span");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->count, 9u);
}

TEST(TraceTest, DisabledSpansRecordNothing) {
  obs::Tracer::Reset();
  obs::SetEnabled(false);
  {
    OPTINTER_TRACE_SPAN("disabled_span");
  }
  obs::SetEnabled(true);
  const obs::SpanProfile profile = obs::Tracer::Collect();
  const obs::SpanProfile* s = FindChild(profile, "disabled_span");
  // The node may exist from an earlier enabled run in this process, but
  // this span must not have counted.
  if (s != nullptr) {
    EXPECT_EQ(s->count, 0u);
  }
}

// ---------------------------------------------------------------------------
// Run report
// ---------------------------------------------------------------------------

TEST(RunReportTest, FileRoundTripContainsAllSections) {
  obs::Tracer::Reset();
  obs::MetricsRegistry::Global().GetCounter("test.report_counter")->Reset();
  obs::MetricsRegistry::Global().GetCounter("test.report_counter")->Add(11);
  {
    OPTINTER_TRACE_SPAN("report_span");
  }

  obs::RunReport report("unit_test_run");
  report.SetMeta("dataset", obs::JsonValue::Str("tiny"));
  obs::JsonValue extra = obs::JsonValue::MakeObject();
  extra.Set("answer", obs::JsonValue::Int(42));
  report.AddSection("extra", std::move(extra));
  report.CaptureMetrics();
  report.CaptureSpans();

  const std::string path =
      (std::filesystem::temp_directory_path() / "optinter_obs_test.json")
          .string();
  std::string error;
  ASSERT_TRUE(report.WriteFile(path, &error)) << error;

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  obs::JsonValue parsed;
  ASSERT_TRUE(obs::JsonValue::Parse(buffer.str(), &parsed, &error)) << error;
  std::filesystem::remove(path);

  ASSERT_NE(parsed.Find("schema_version"), nullptr);
  EXPECT_EQ(parsed.Find("schema_version")->int_value(), 1);
  ASSERT_NE(parsed.Find("run"), nullptr);
  EXPECT_EQ(parsed.Find("run")->Find("name")->string_value(),
            "unit_test_run");
  EXPECT_EQ(parsed.Find("run")->Find("dataset")->string_value(), "tiny");
  EXPECT_EQ(parsed.Find("extra")->Find("answer")->int_value(), 42);
  const obs::JsonValue* metrics = parsed.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->Find("counters")
                ->Find("test.report_counter")
                ->int_value(),
            11);
  const obs::JsonValue* spans = parsed.Find("spans");
  ASSERT_NE(spans, nullptr);
  EXPECT_EQ(spans->Find("name")->string_value(), "run");
  bool found_span = false;
  const obs::JsonValue* children = spans->Find("children");
  ASSERT_NE(children, nullptr);
  for (size_t i = 0; i < children->size(); ++i) {
    if (children->at(i).Find("name")->string_value() == "report_span") {
      found_span = true;
      EXPECT_EQ(children->at(i).Find("count")->int_value(), 1);
    }
  }
  EXPECT_TRUE(found_span);
}

TEST(RunReportTest, WriteFileFailsOnBadPath) {
  obs::RunReport report("x");
  std::string error;
  EXPECT_FALSE(
      report.WriteFile("/nonexistent_dir_zz/report.json", &error));
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// Search dynamics
// ---------------------------------------------------------------------------

TEST(SearchDynamicsTest, ToJsonSerializesAllFields) {
  obs::SearchEpochDynamics d;
  d.epoch = 2;
  d.temperature = 0.5;
  d.alpha_entropy_per_pair = {1.0, 0.25};
  d.mean_alpha_entropy = 0.625;
  d.min_alpha_entropy = 0.25;
  d.max_alpha_entropy = 1.0;
  d.argmax_counts = {{1, 1, 0}};
  d.argmax_flips = 1;
  obs::SearchDynamics dyn;
  dyn.epochs.push_back(d);
  const obs::JsonValue j = obs::SearchDynamicsToJson(dyn);
  const obs::JsonValue* epochs = j.Find("epochs");
  ASSERT_NE(epochs, nullptr);
  ASSERT_EQ(epochs->size(), 1u);
  const obs::JsonValue& e = epochs->at(0);
  EXPECT_EQ(e.Find("epoch")->int_value(), 2);
  EXPECT_DOUBLE_EQ(e.Find("temperature")->number(), 0.5);
  EXPECT_EQ(e.Find("alpha_entropy_per_pair")->size(), 2u);
  EXPECT_DOUBLE_EQ(e.Find("mean_alpha_entropy")->number(), 0.625);
  EXPECT_EQ(e.Find("argmax_counts")->Find("memorize")->int_value(), 1);
  EXPECT_EQ(e.Find("argmax_counts")->Find("factorize")->int_value(), 1);
  EXPECT_EQ(e.Find("argmax_counts")->Find("naive")->int_value(), 0);
  EXPECT_EQ(e.Find("argmax_flips")->int_value(), 1);
}

TEST(SearchDynamicsTest, PopulatedByShortSearchRun) {
  auto prepared = PrepareProfile("tiny", PrepareOptions());
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  HyperParams hp = DefaultHyperParams("tiny");
  SearchOptions sopts;
  sopts.search_epochs = 2;
  const SearchResult result =
      RunSearchStage(prepared->data, prepared->splits, hp, sopts);

  const size_t num_pairs = prepared->data.num_pairs();
  ASSERT_EQ(result.dynamics.epochs.size(), 2u);
  for (size_t i = 0; i < result.dynamics.epochs.size(); ++i) {
    const obs::SearchEpochDynamics& d = result.dynamics.epochs[i];
    EXPECT_EQ(d.epoch, i);
    EXPECT_GT(d.temperature, 0.0);
    EXPECT_EQ(d.alpha_entropy_per_pair.size(), num_pairs);
    // Entropy of a 3-way categorical is within [0, ln 3].
    EXPECT_GE(d.min_alpha_entropy, 0.0);
    EXPECT_LE(d.max_alpha_entropy, std::log(3.0) + 1e-9);
    EXPECT_GE(d.mean_alpha_entropy, d.min_alpha_entropy);
    EXPECT_LE(d.mean_alpha_entropy, d.max_alpha_entropy);
    EXPECT_EQ(d.argmax_counts[0] + d.argmax_counts[1] + d.argmax_counts[2],
              num_pairs);
  }
  // Flips are counted only from the second epoch on.
  EXPECT_EQ(result.dynamics.epochs[0].argmax_flips, 0u);
  EXPECT_LE(result.dynamics.epochs[1].argmax_flips, num_pairs);
}

// ---------------------------------------------------------------------------
// Logging satellites
// ---------------------------------------------------------------------------

TEST(LoggingTest, LogLevelFromString) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(LogLevelFromString("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(LogLevelFromString("WARNING", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(LogLevelFromString("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(LogLevelFromString("3", &level));
  EXPECT_EQ(level, LogLevel::kError);
  level = LogLevel::kDebug;
  EXPECT_FALSE(LogLevelFromString("nope", &level));
  EXPECT_EQ(level, LogLevel::kDebug);  // untouched on failure
}

TEST(LoggingTest, LinePrefixHasLevelTimestampThreadAndLocation) {
  SetLogLevel(LogLevel::kInfo);
  std::ostringstream captured;
  std::streambuf* old = std::cerr.rdbuf(captured.rdbuf());
  LOG_INFO() << "prefix format probe";
  std::cerr.rdbuf(old);
  const std::string line = captured.str();
  // "[I HH:MM:SS.mmm tN file:line] prefix format probe\n"
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.substr(0, 3), "[I ");
  EXPECT_NE(line.find(" t"), std::string::npos);
  EXPECT_NE(line.find("obs_test.cc:"), std::string::npos);
  EXPECT_NE(line.find("] prefix format probe\n"), std::string::npos);
  // Timestamp shape: two ':' in HH:MM:SS and one '.' before millis.
  const size_t ts_start = 3;
  EXPECT_EQ(line[ts_start + 2], ':');
  EXPECT_EQ(line[ts_start + 5], ':');
  EXPECT_EQ(line[ts_start + 8], '.');
}

TEST(LoggingTest, BelowLevelLinesAreSuppressed) {
  SetLogLevel(LogLevel::kWarning);
  std::ostringstream captured;
  std::streambuf* old = std::cerr.rdbuf(captured.rdbuf());
  LOG_INFO() << "should not appear";
  LOG_WARNING() << "should appear";
  std::cerr.rdbuf(old);
  SetLogLevel(LogLevel::kInfo);
  const std::string out = captured.str();
  EXPECT_EQ(out.find("should not appear"), std::string::npos);
  EXPECT_NE(out.find("should appear"), std::string::npos);
}

TEST(LoggingTest, ConcurrentLinesDoNotInterleave) {
  SetLogLevel(LogLevel::kInfo);
  std::ostringstream captured;
  std::streambuf* old = std::cerr.rdbuf(captured.rdbuf());
  ThreadPool pool(4);
  constexpr int kLines = 200;
  for (int i = 0; i < kLines; ++i) {
    pool.Submit([] { LOG_INFO() << "interleave-probe-payload"; });
  }
  pool.Wait();
  std::cerr.rdbuf(old);
  // Every emitted line contains the intact payload exactly once.
  std::istringstream lines(captured.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    EXPECT_NE(line.find("interleave-probe-payload"), std::string::npos)
        << "torn line: " << line;
    ++count;
  }
  EXPECT_EQ(count, kLines);
}

// ---------------------------------------------------------------------------
// Trainer JSON
// ---------------------------------------------------------------------------

TEST(TrainerJsonTest, TelemetryRoundTripsThroughJson) {
  TrainTelemetry t;
  EpochTelemetry e;
  e.epoch = 0;
  e.train_seconds = 1.5;
  e.eval_seconds = 0.25;
  e.train_rows_per_sec = 1000.0;
  e.mean_train_loss = 0.693;
  e.improved = true;
  t.epochs.push_back(e);
  t.train_seconds_total = 1.5;
  t.eval_seconds_total = 0.25;
  t.train_rows_per_sec = 1000.0;
  t.best_epoch = 0;
  t.early_stopped = false;
  t.restored_best_snapshot = true;

  const obs::JsonValue j = TelemetryToJson(t);
  EXPECT_EQ(j.Find("epochs")->size(), 1u);
  const obs::JsonValue& ej = j.Find("epochs")->at(0);
  EXPECT_DOUBLE_EQ(ej.Find("train_seconds")->number(), 1.5);
  EXPECT_TRUE(ej.Find("improved")->bool_value());
  EXPECT_DOUBLE_EQ(j.Find("train_seconds_total")->number(), 1.5);
  EXPECT_TRUE(j.Find("restored_best_snapshot")->bool_value());
  // Serialized form parses back to an equal value.
  obs::JsonValue parsed;
  std::string error;
  ASSERT_TRUE(obs::JsonValue::Parse(j.Serialize(2), &parsed, &error))
      << error;
  EXPECT_EQ(parsed, j);
}

}  // namespace
}  // namespace optinter
