// Tests for the observability layer: JSON value round-trips, the metrics
// registry under concurrent pool increments, trace-span nesting and merge
// determinism, run-report serialization, search-dynamics capture, and the
// logging satellites (env-level parsing, line prefix format).

#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <thread>

#include "common/logging.h"
#include "common/thread_pool.h"
#include "core/pipeline.h"
#include "obs/counters.h"
#include "obs/json.h"
#include "obs/prometheus.h"
#include "obs/registry.h"
#include "obs/run_report.h"
#include "obs/search_dynamics.h"
#include "obs/timeline.h"
#include "obs/trace.h"
#include "synth/prepare.h"
#include "train/trainer.h"

namespace optinter {
namespace {

// ---------------------------------------------------------------------------
// JSON
// ---------------------------------------------------------------------------

TEST(JsonTest, SerializeScalars) {
  EXPECT_EQ(obs::JsonValue::Null().Serialize(), "null");
  EXPECT_EQ(obs::JsonValue::Bool(true).Serialize(), "true");
  EXPECT_EQ(obs::JsonValue::Bool(false).Serialize(), "false");
  EXPECT_EQ(obs::JsonValue::Int(-42).Serialize(), "-42");
  EXPECT_EQ(obs::JsonValue::Uint(7).Serialize(), "7");
  EXPECT_EQ(obs::JsonValue::Str("hi").Serialize(), "\"hi\"");
}

TEST(JsonTest, EscapesControlAndQuoteCharacters) {
  const std::string s = obs::JsonValue::Str("a\"b\\c\n\t\x01").Serialize();
  EXPECT_EQ(s, "\"a\\\"b\\\\c\\n\\t\\u0001\"");
}

TEST(JsonTest, ObjectPreservesInsertionOrder) {
  obs::JsonValue obj = obs::JsonValue::MakeObject();
  obj.Set("zebra", obs::JsonValue::Int(1));
  obj.Set("alpha", obs::JsonValue::Int(2));
  EXPECT_EQ(obj.Serialize(), "{\"zebra\":1,\"alpha\":2}");
  // Re-setting a key keeps its position.
  obj.Set("zebra", obs::JsonValue::Int(3));
  EXPECT_EQ(obj.Serialize(), "{\"zebra\":3,\"alpha\":2}");
}

TEST(JsonTest, ParseRoundTrip) {
  obs::JsonValue obj = obs::JsonValue::MakeObject();
  obj.Set("name", obs::JsonValue::Str("run \"x\"\n"));
  obj.Set("n", obs::JsonValue::Int(-5));
  obj.Set("pi", obs::JsonValue::Double(3.25));
  obj.Set("ok", obs::JsonValue::Bool(true));
  obj.Set("nothing", obs::JsonValue::Null());
  obs::JsonValue arr = obs::JsonValue::MakeArray();
  arr.Push(obs::JsonValue::Int(1));
  arr.Push(obs::JsonValue::Str("two"));
  obj.Set("items", std::move(arr));

  for (const int indent : {-1, 0, 2}) {
    const std::string text = obj.Serialize(indent);
    obs::JsonValue parsed;
    std::string error;
    ASSERT_TRUE(obs::JsonValue::Parse(text, &parsed, &error)) << error;
    EXPECT_EQ(parsed, obj) << text;
  }
}

TEST(JsonTest, ParseRejectsMalformedInput) {
  obs::JsonValue out;
  std::string error;
  EXPECT_FALSE(obs::JsonValue::Parse("{", &out, &error));
  EXPECT_FALSE(obs::JsonValue::Parse("[1,]", &out, &error));
  EXPECT_FALSE(obs::JsonValue::Parse("\"unterminated", &out, &error));
  EXPECT_FALSE(obs::JsonValue::Parse("1 trailing", &out, &error));
  EXPECT_FALSE(obs::JsonValue::Parse("", &out, &error));
}

TEST(JsonTest, ParseUnicodeEscapes) {
  obs::JsonValue out;
  std::string error;
  ASSERT_TRUE(obs::JsonValue::Parse("\"\\u0041\\u00e9\"", &out, &error))
      << error;
  EXPECT_EQ(out.string_value(), "A\xc3\xa9");
}

// ---------------------------------------------------------------------------
// Metrics registry
// ---------------------------------------------------------------------------

TEST(RegistryTest, CounterAccumulatesAcrossConcurrentPoolTasks) {
  obs::Counter* c =
      obs::MetricsRegistry::Global().GetCounter("test.concurrent_counter");
  c->Reset();
  ThreadPool pool(4);
  constexpr size_t kTasks = 64;
  constexpr size_t kPerTask = 1000;
  for (size_t t = 0; t < kTasks; ++t) {
    pool.Submit([c] {
      for (size_t i = 0; i < kPerTask; ++i) c->Add(1);
    });
  }
  pool.Wait();
  EXPECT_EQ(c->Value(), kTasks * kPerTask);
}

TEST(RegistryTest, GetReturnsSamePointerForSameName) {
  auto& reg = obs::MetricsRegistry::Global();
  EXPECT_EQ(reg.GetCounter("test.same"), reg.GetCounter("test.same"));
  EXPECT_EQ(reg.GetGauge("test.same_gauge"),
            reg.GetGauge("test.same_gauge"));
  EXPECT_EQ(reg.GetHistogram("test.same_hist", {1.0}),
            reg.GetHistogram("test.same_hist", {1.0}));
}

TEST(RegistryDeathTest, HistogramBoundsMismatchAborts) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetHistogram("test.bounds_mismatch", {1.0, 2.0});
  EXPECT_DEATH(reg.GetHistogram("test.bounds_mismatch", {1.0, 3.0}),
               "different upper_bounds");
}

TEST(RegistryTest, HistogramBucketEdges) {
  obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "test.bucket_edges", {1.0, 2.0, 4.0});
  h->Reset();
  // Bucket i counts bounds[i-1] < v <= bounds[i]; the upper bound is
  // inclusive.
  h->Observe(0.5);  // bucket 0
  h->Observe(1.0);  // bucket 0 (inclusive upper edge)
  h->Observe(1.5);  // bucket 1
  h->Observe(2.0);  // bucket 1
  h->Observe(4.0);  // bucket 2
  h->Observe(5.0);  // overflow
  ASSERT_EQ(h->num_buckets(), 4u);
  EXPECT_EQ(h->bucket_count(0), 2u);
  EXPECT_EQ(h->bucket_count(1), 2u);
  EXPECT_EQ(h->bucket_count(2), 1u);
  EXPECT_EQ(h->bucket_count(3), 1u);
  EXPECT_EQ(h->count(), 6u);
  EXPECT_DOUBLE_EQ(h->sum(), 0.5 + 1.0 + 1.5 + 2.0 + 4.0 + 5.0);
}

TEST(RegistryTest, HistogramQuantileInterpolates) {
  obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "test.quantile", {10.0, 20.0, 40.0});
  h->Reset();
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 0.0);  // empty histogram
  // 8 observations in (0, 10], 2 in (10, 20].
  for (int i = 0; i < 8; ++i) h->Observe(5.0);
  for (int i = 0; i < 2; ++i) h->Observe(15.0);
  // p50: rank 5 of 8 in bucket (0, 10] → 10 * 5/8.
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 10.0 * 5.0 / 8.0);
  // p90: rank 9 lands on the first of 2 observations in (10, 20].
  EXPECT_DOUBLE_EQ(h->Quantile(0.9), 10.0 + 10.0 * 1.0 / 2.0);
  EXPECT_DOUBLE_EQ(h->Quantile(1.0), 20.0);
  // Out-of-range q clamps.
  EXPECT_DOUBLE_EQ(h->Quantile(-1.0), h->Quantile(0.0));
  // Overflow-bucket observations report the last finite bound as a floor.
  h->Reset();
  h->Observe(1000.0);
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 40.0);
}

TEST(RegistryTest, HistogramQuantileEdgeCases) {
  obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "test.quantile_edges", {10.0, 20.0});
  // Empty histogram: every quantile is 0.
  h->Reset();
  EXPECT_DOUBLE_EQ(h->Quantile(0.0), 0.0);
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 0.0);
  EXPECT_DOUBLE_EQ(h->Quantile(1.0), 0.0);
  // q=0 reports the lower edge of the first non-empty bucket; q=1 its
  // upper edge when all mass sits in one finite bucket.
  h->Observe(15.0);
  EXPECT_DOUBLE_EQ(h->Quantile(0.0), 10.0);
  EXPECT_DOUBLE_EQ(h->Quantile(1.0), 20.0);
  // All mass in the overflow bucket: every quantile is floored at the
  // largest finite bound (the overflow bucket has no upper edge).
  h->Reset();
  for (int i = 0; i < 5; ++i) h->Observe(1e6);
  EXPECT_DOUBLE_EQ(h->Quantile(0.0), 20.0);
  EXPECT_DOUBLE_EQ(h->Quantile(0.5), 20.0);
  EXPECT_DOUBLE_EQ(h->Quantile(1.0), 20.0);
  EXPECT_EQ(h->count(), 5u);
}

TEST(RegistryTest, GaugeSetAndAdd) {
  obs::Gauge* g = obs::MetricsRegistry::Global().GetGauge("test.gauge");
  g->Set(2.5);
  EXPECT_DOUBLE_EQ(g->Value(), 2.5);
  g->Add(1.25);
  EXPECT_DOUBLE_EQ(g->Value(), 3.75);
  g->Reset();
  EXPECT_DOUBLE_EQ(g->Value(), 0.0);
}

TEST(RegistryTest, ToJsonContainsRegisteredMetrics) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("test.json_counter")->Reset();
  reg.GetCounter("test.json_counter")->Add(3);
  obs::Histogram* h = reg.GetHistogram("test.json_hist", {10.0});
  h->Reset();
  h->Observe(4.0);
  const obs::JsonValue snapshot = reg.ToJson();
  const obs::JsonValue* counters = snapshot.Find("counters");
  ASSERT_NE(counters, nullptr);
  const obs::JsonValue* c = counters->Find("test.json_counter");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->int_value(), 3);
  const obs::JsonValue* hists = snapshot.Find("histograms");
  ASSERT_NE(hists, nullptr);
  const obs::JsonValue* hj = hists->Find("test.json_hist");
  ASSERT_NE(hj, nullptr);
  ASSERT_NE(hj->Find("bucket_counts"), nullptr);
  EXPECT_EQ(hj->Find("bucket_counts")->at(0).int_value(), 1);
  EXPECT_EQ(hj->Find("count")->int_value(), 1);
}

TEST(RegistryTest, EnabledToggle) {
  EXPECT_TRUE(obs::Enabled());  // default on (no OPTINTER_OBS in tests)
  obs::SetEnabled(false);
  EXPECT_FALSE(obs::Enabled());
  obs::SetEnabled(true);
  EXPECT_TRUE(obs::Enabled());
}

// ---------------------------------------------------------------------------
// Trace spans
// ---------------------------------------------------------------------------

/// Child of `p` named `name`, or nullptr.
const obs::SpanProfile* FindChild(const obs::SpanProfile& p,
                                  const std::string& name) {
  for (const obs::SpanProfile& c : p.children) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

TEST(TraceTest, NestedSpansBuildHierarchicalProfile) {
  obs::Tracer::Reset();
  {
    OPTINTER_TRACE_SPAN("outer_a");
    {
      OPTINTER_TRACE_SPAN("inner_b");
    }
    {
      OPTINTER_TRACE_SPAN("inner_b");
    }
    {
      OPTINTER_TRACE_SPAN("inner_c");
    }
  }
  const obs::SpanProfile profile = obs::Tracer::Collect();
  EXPECT_EQ(profile.name, "run");
  const obs::SpanProfile* a = FindChild(profile, "outer_a");
  ASSERT_NE(a, nullptr);
  EXPECT_EQ(a->count, 1u);
  const obs::SpanProfile* b = FindChild(*a, "inner_b");
  ASSERT_NE(b, nullptr);
  EXPECT_EQ(b->count, 2u);
  const obs::SpanProfile* c = FindChild(*a, "inner_c");
  ASSERT_NE(c, nullptr);
  EXPECT_EQ(c->count, 1u);
  // Children must contain the parent's time (parent covers them).
  EXPECT_GE(a->total_ns, b->total_ns + c->total_ns);
}

TEST(TraceTest, CollectIsDeterministicAndSorted) {
  obs::Tracer::Reset();
  {
    OPTINTER_TRACE_SPAN("z_span");
  }
  {
    OPTINTER_TRACE_SPAN("a_span");
  }
  const obs::SpanProfile first = obs::Tracer::Collect();
  const obs::SpanProfile second = obs::Tracer::Collect();
  // Collect is read-only: two collections agree exactly.
  EXPECT_EQ(obs::Tracer::ToJson(first).Serialize(),
            obs::Tracer::ToJson(second).Serialize());
  // Children sorted by name.
  for (size_t i = 1; i < first.children.size(); ++i) {
    EXPECT_LT(first.children[i - 1].name, first.children[i].name);
  }
}

TEST(TraceTest, SpansFromPoolThreadsMergeByName) {
  obs::Tracer::Reset();
  ThreadPool pool(3);
  for (int t = 0; t < 9; ++t) {
    pool.Submit([] { OPTINTER_TRACE_SPAN("pool_span"); });
  }
  pool.Wait();
  const obs::SpanProfile profile = obs::Tracer::Collect();
  const obs::SpanProfile* merged = FindChild(profile, "pool_span");
  ASSERT_NE(merged, nullptr);
  EXPECT_EQ(merged->count, 9u);
}

TEST(TraceTest, DisabledSpansRecordNothing) {
  obs::Tracer::Reset();
  obs::SetEnabled(false);
  {
    OPTINTER_TRACE_SPAN("disabled_span");
  }
  obs::SetEnabled(true);
  const obs::SpanProfile profile = obs::Tracer::Collect();
  const obs::SpanProfile* s = FindChild(profile, "disabled_span");
  // The node may exist from an earlier enabled run in this process, but
  // this span must not have counted.
  if (s != nullptr) {
    EXPECT_EQ(s->count, 0u);
  }
}

// ---------------------------------------------------------------------------
// Run report
// ---------------------------------------------------------------------------

TEST(RunReportTest, FileRoundTripContainsAllSections) {
  obs::Tracer::Reset();
  obs::MetricsRegistry::Global().GetCounter("test.report_counter")->Reset();
  obs::MetricsRegistry::Global().GetCounter("test.report_counter")->Add(11);
  {
    OPTINTER_TRACE_SPAN("report_span");
  }

  obs::RunReport report("unit_test_run");
  report.SetMeta("dataset", obs::JsonValue::Str("tiny"));
  obs::JsonValue extra = obs::JsonValue::MakeObject();
  extra.Set("answer", obs::JsonValue::Int(42));
  report.AddSection("extra", std::move(extra));
  report.CaptureMetrics();
  report.CaptureSpans();

  const std::string path =
      (std::filesystem::temp_directory_path() / "optinter_obs_test.json")
          .string();
  std::string error;
  ASSERT_TRUE(report.WriteFile(path, &error)) << error;

  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  obs::JsonValue parsed;
  ASSERT_TRUE(obs::JsonValue::Parse(buffer.str(), &parsed, &error)) << error;
  std::filesystem::remove(path);

  ASSERT_NE(parsed.Find("schema_version"), nullptr);
  EXPECT_EQ(parsed.Find("schema_version")->int_value(), 1);
  ASSERT_NE(parsed.Find("run"), nullptr);
  EXPECT_EQ(parsed.Find("run")->Find("name")->string_value(),
            "unit_test_run");
  EXPECT_EQ(parsed.Find("run")->Find("dataset")->string_value(), "tiny");
  EXPECT_EQ(parsed.Find("extra")->Find("answer")->int_value(), 42);
  const obs::JsonValue* metrics = parsed.Find("metrics");
  ASSERT_NE(metrics, nullptr);
  EXPECT_EQ(metrics->Find("counters")
                ->Find("test.report_counter")
                ->int_value(),
            11);
  const obs::JsonValue* spans = parsed.Find("spans");
  ASSERT_NE(spans, nullptr);
  EXPECT_EQ(spans->Find("name")->string_value(), "run");
  bool found_span = false;
  const obs::JsonValue* children = spans->Find("children");
  ASSERT_NE(children, nullptr);
  for (size_t i = 0; i < children->size(); ++i) {
    if (children->at(i).Find("name")->string_value() == "report_span") {
      found_span = true;
      EXPECT_EQ(children->at(i).Find("count")->int_value(), 1);
    }
  }
  EXPECT_TRUE(found_span);
}

TEST(RunReportTest, WriteFileFailsOnBadPath) {
  obs::RunReport report("x");
  std::string error;
  EXPECT_FALSE(
      report.WriteFile("/nonexistent_dir_zz/report.json", &error));
  EXPECT_FALSE(error.empty());
}

// ---------------------------------------------------------------------------
// Search dynamics
// ---------------------------------------------------------------------------

TEST(SearchDynamicsTest, ToJsonSerializesAllFields) {
  obs::SearchEpochDynamics d;
  d.epoch = 2;
  d.temperature = 0.5;
  d.alpha_entropy_per_pair = {1.0, 0.25};
  d.mean_alpha_entropy = 0.625;
  d.min_alpha_entropy = 0.25;
  d.max_alpha_entropy = 1.0;
  d.argmax_counts = {{1, 1, 0}};
  d.argmax_flips = 1;
  obs::SearchDynamics dyn;
  dyn.epochs.push_back(d);
  const obs::JsonValue j = obs::SearchDynamicsToJson(dyn);
  const obs::JsonValue* epochs = j.Find("epochs");
  ASSERT_NE(epochs, nullptr);
  ASSERT_EQ(epochs->size(), 1u);
  const obs::JsonValue& e = epochs->at(0);
  EXPECT_EQ(e.Find("epoch")->int_value(), 2);
  EXPECT_DOUBLE_EQ(e.Find("temperature")->number(), 0.5);
  EXPECT_EQ(e.Find("alpha_entropy_per_pair")->size(), 2u);
  EXPECT_DOUBLE_EQ(e.Find("mean_alpha_entropy")->number(), 0.625);
  EXPECT_EQ(e.Find("argmax_counts")->Find("memorize")->int_value(), 1);
  EXPECT_EQ(e.Find("argmax_counts")->Find("factorize")->int_value(), 1);
  EXPECT_EQ(e.Find("argmax_counts")->Find("naive")->int_value(), 0);
  EXPECT_EQ(e.Find("argmax_flips")->int_value(), 1);
}

TEST(SearchDynamicsTest, PopulatedByShortSearchRun) {
  auto prepared = PrepareProfile("tiny", PrepareOptions());
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  HyperParams hp = DefaultHyperParams("tiny");
  SearchOptions sopts;
  sopts.search_epochs = 2;
  const SearchResult result =
      RunSearchStage(prepared->data, prepared->splits, hp, sopts);

  const size_t num_pairs = prepared->data.num_pairs();
  ASSERT_EQ(result.dynamics.epochs.size(), 2u);
  for (size_t i = 0; i < result.dynamics.epochs.size(); ++i) {
    const obs::SearchEpochDynamics& d = result.dynamics.epochs[i];
    EXPECT_EQ(d.epoch, i);
    EXPECT_GT(d.temperature, 0.0);
    EXPECT_EQ(d.alpha_entropy_per_pair.size(), num_pairs);
    // Entropy of a 3-way categorical is within [0, ln 3].
    EXPECT_GE(d.min_alpha_entropy, 0.0);
    EXPECT_LE(d.max_alpha_entropy, std::log(3.0) + 1e-9);
    EXPECT_GE(d.mean_alpha_entropy, d.min_alpha_entropy);
    EXPECT_LE(d.mean_alpha_entropy, d.max_alpha_entropy);
    EXPECT_EQ(d.argmax_counts[0] + d.argmax_counts[1] + d.argmax_counts[2],
              num_pairs);
  }
  // Flips are counted only from the second epoch on.
  EXPECT_EQ(result.dynamics.epochs[0].argmax_flips, 0u);
  EXPECT_LE(result.dynamics.epochs[1].argmax_flips, num_pairs);
}

TEST(SearchDynamicsTest, AlphaFlipEventsSerialize) {
  obs::SearchDynamics dyn;
  dyn.sample_every = 16;
  obs::AlphaFlipEvent ev;
  ev.epoch = 1;
  ev.step = 48;
  ev.pair = 3;
  ev.from = 0;  // memorize
  ev.to = 2;    // naive
  dyn.flip_events.push_back(ev);
  const obs::JsonValue j = obs::SearchDynamicsToJson(dyn);
  EXPECT_EQ(j.Find("alpha_sample_every")->int_value(), 16);
  const obs::JsonValue* flips = j.Find("flip_events");
  ASSERT_NE(flips, nullptr);
  ASSERT_EQ(flips->size(), 1u);
  const obs::JsonValue& f = flips->at(0);
  EXPECT_EQ(f.Find("epoch")->int_value(), 1);
  EXPECT_EQ(f.Find("step")->int_value(), 48);
  EXPECT_EQ(f.Find("pair")->int_value(), 3);
  EXPECT_EQ(f.Find("from")->string_value(), "memorize");
  EXPECT_EQ(f.Find("to")->string_value(), "naive");
  // Sampling off: neither key appears (per-epoch-only reports unchanged).
  obs::SearchDynamics off;
  const obs::JsonValue j_off = obs::SearchDynamicsToJson(off);
  EXPECT_EQ(j_off.Find("alpha_sample_every"), nullptr);
  EXPECT_EQ(j_off.Find("flip_events"), nullptr);
}

TEST(SearchDynamicsTest, WithinEpochSamplingRecordsValidFlips) {
  auto prepared = PrepareProfile("tiny", PrepareOptions());
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  HyperParams hp = DefaultHyperParams("tiny");
  SearchOptions sopts;
  sopts.search_epochs = 2;
  sopts.alpha_sample_every = 3;
  const SearchResult result =
      RunSearchStage(prepared->data, prepared->splits, hp, sopts);
  EXPECT_EQ(result.dynamics.sample_every, 3u);
  // Early search epochs at high temperature flip constantly; an empty
  // event list here would mean sampling never ran.
  EXPECT_FALSE(result.dynamics.flip_events.empty());
  const size_t num_pairs = prepared->data.num_pairs();
  for (const obs::AlphaFlipEvent& ev : result.dynamics.flip_events) {
    EXPECT_LT(ev.epoch, sopts.search_epochs);
    EXPECT_GT(ev.step, 0u);
    EXPECT_EQ(ev.step % sopts.alpha_sample_every, 0u);
    EXPECT_LT(ev.pair, num_pairs);
    EXPECT_GE(ev.from, 0);
    EXPECT_LE(ev.from, 2);
    EXPECT_GE(ev.to, 0);
    EXPECT_LE(ev.to, 2);
    EXPECT_NE(ev.from, ev.to);
  }
  // Sampling must not change the search outcome: the same run without
  // sampling lands on the same architecture (observation-only contract).
  SearchOptions plain = sopts;
  plain.alpha_sample_every = 0;
  const SearchResult baseline =
      RunSearchStage(prepared->data, prepared->splits, hp, plain);
  EXPECT_EQ(baseline.arch, result.arch);
}

// ---------------------------------------------------------------------------
// Prometheus text exposition
// ---------------------------------------------------------------------------

/// One parsed Prometheus sample line: `name{labels} value`.
struct PromSample {
  std::string name;
  std::string labels;  // raw text between the braces ("" when absent)
  double value = 0.0;
};

/// Minimal exposition-format parser: validates the line grammar the
/// encoder must produce and returns the samples. Fails the test on any
/// line that is neither a comment nor a well-formed sample.
std::vector<PromSample> ParsePrometheusText(const std::string& text) {
  std::vector<PromSample> samples;
  std::istringstream lines(text);
  std::string line;
  while (std::getline(lines, line)) {
    if (line.empty()) continue;
    if (line[0] == '#') {
      EXPECT_TRUE(line.rfind("# HELP ", 0) == 0 ||
                  line.rfind("# TYPE ", 0) == 0)
          << "bad comment line: " << line;
      continue;
    }
    PromSample s;
    size_t name_end = line.find_first_of("{ ");
    if (name_end == std::string::npos || name_end == 0) {
      ADD_FAILURE() << "bad sample line: " << line;
      continue;
    }
    s.name = line.substr(0, name_end);
    // Metric-name grammar: [a-zA-Z_:][a-zA-Z0-9_:]*
    EXPECT_TRUE(std::isalpha(static_cast<unsigned char>(s.name[0])) ||
                s.name[0] == '_' || s.name[0] == ':')
        << s.name;
    for (const char c : s.name) {
      EXPECT_TRUE(std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
                  c == ':')
          << "bad char in metric name: " << s.name;
    }
    size_t value_start = name_end;
    if (line[name_end] == '{') {
      const size_t close = line.find('}', name_end);
      if (close == std::string::npos) {
        ADD_FAILURE() << "unclosed labels: " << line;
        continue;
      }
      s.labels = line.substr(name_end + 1, close - name_end - 1);
      value_start = close + 1;
    }
    if (value_start >= line.size() || line[value_start] != ' ') {
      ADD_FAILURE() << "missing value: " << line;
      continue;
    }
    const std::string value_text = line.substr(value_start + 1);
    if (value_text == "+Inf") {
      s.value = std::numeric_limits<double>::infinity();
    } else {
      s.value = std::stod(value_text);
    }
    samples.push_back(std::move(s));
  }
  return samples;
}

const PromSample* FindSample(const std::vector<PromSample>& samples,
                             const std::string& name,
                             const std::string& labels = "") {
  for (const PromSample& s : samples) {
    if (s.name == name && s.labels == labels) return &s;
  }
  return nullptr;
}

TEST(PrometheusTest, SanitizeName) {
  EXPECT_EQ(obs::PrometheusSanitizeName("serve.latency_us"),
            "serve_latency_us");
  EXPECT_EQ(obs::PrometheusSanitizeName("train.rows"), "train_rows");
  EXPECT_EQ(obs::PrometheusSanitizeName("a-b c"), "a_b_c");
  EXPECT_EQ(obs::PrometheusSanitizeName("9lives"), "_9lives");
  EXPECT_EQ(obs::PrometheusSanitizeName(""), "_");
  EXPECT_EQ(obs::PrometheusSanitizeName("already_ok:name"),
            "already_ok:name");
}

TEST(PrometheusTest, EscapeLabelValue) {
  EXPECT_EQ(obs::PrometheusEscapeLabelValue("plain"), "plain");
  EXPECT_EQ(obs::PrometheusEscapeLabelValue("a\\b"), "a\\\\b");
  EXPECT_EQ(obs::PrometheusEscapeLabelValue("say \"hi\""),
            "say \\\"hi\\\"");
  EXPECT_EQ(obs::PrometheusEscapeLabelValue("line\nbreak"),
            "line\\nbreak");
}

TEST(PrometheusTest, RenderFromHandBuiltSnapshot) {
  obs::JsonValue snapshot = obs::JsonValue::MakeObject();
  obs::JsonValue counters = obs::JsonValue::MakeObject();
  counters.Set("serve.requests", obs::JsonValue::Uint(42));
  snapshot.Set("counters", std::move(counters));
  obs::JsonValue gauges = obs::JsonValue::MakeObject();
  gauges.Set("queue.depth", obs::JsonValue::Double(3.5));
  snapshot.Set("gauges", std::move(gauges));
  obs::JsonValue hist = obs::JsonValue::MakeObject();
  obs::JsonValue bounds = obs::JsonValue::MakeArray();
  bounds.Push(obs::JsonValue::Double(10.0));
  bounds.Push(obs::JsonValue::Double(20.0));
  hist.Set("upper_bounds", std::move(bounds));
  obs::JsonValue buckets = obs::JsonValue::MakeArray();
  buckets.Push(obs::JsonValue::Uint(3));  // (0, 10]
  buckets.Push(obs::JsonValue::Uint(2));  // (10, 20]
  buckets.Push(obs::JsonValue::Uint(1));  // overflow
  hist.Set("bucket_counts", std::move(buckets));
  hist.Set("sum", obs::JsonValue::Double(123.5));
  hist.Set("count", obs::JsonValue::Uint(6));
  obs::JsonValue hists = obs::JsonValue::MakeObject();
  hists.Set("serve.latency_us", std::move(hist));
  snapshot.Set("histograms", std::move(hists));

  const std::string text = obs::RenderPrometheusText(snapshot);
  EXPECT_NE(text.find("# TYPE serve_requests counter"), std::string::npos);
  EXPECT_NE(text.find("# TYPE queue_depth gauge"), std::string::npos);
  EXPECT_NE(text.find("# TYPE serve_latency_us histogram"),
            std::string::npos);

  const std::vector<PromSample> samples = ParsePrometheusText(text);
  const PromSample* requests = FindSample(samples, "serve_requests");
  ASSERT_NE(requests, nullptr);
  EXPECT_DOUBLE_EQ(requests->value, 42.0);
  const PromSample* depth = FindSample(samples, "queue_depth");
  ASSERT_NE(depth, nullptr);
  EXPECT_DOUBLE_EQ(depth->value, 3.5);

  // Buckets are cumulative, monotone, and +Inf equals _count (the
  // overflow bucket folded in).
  const PromSample* b10 =
      FindSample(samples, "serve_latency_us_bucket", "le=\"10\"");
  const PromSample* b20 =
      FindSample(samples, "serve_latency_us_bucket", "le=\"20\"");
  const PromSample* binf =
      FindSample(samples, "serve_latency_us_bucket", "le=\"+Inf\"");
  ASSERT_NE(b10, nullptr);
  ASSERT_NE(b20, nullptr);
  ASSERT_NE(binf, nullptr);
  EXPECT_DOUBLE_EQ(b10->value, 3.0);
  EXPECT_DOUBLE_EQ(b20->value, 5.0);
  EXPECT_DOUBLE_EQ(binf->value, 6.0);
  EXPECT_LE(b10->value, b20->value);
  EXPECT_LE(b20->value, binf->value);
  const PromSample* count = FindSample(samples, "serve_latency_us_count");
  ASSERT_NE(count, nullptr);
  EXPECT_DOUBLE_EQ(count->value, binf->value);
  const PromSample* sum = FindSample(samples, "serve_latency_us_sum");
  ASSERT_NE(sum, nullptr);
  EXPECT_DOUBLE_EQ(sum->value, 123.5);
}

TEST(PrometheusTest, RenderGlobalRegistrySnapshotParses) {
  auto& reg = obs::MetricsRegistry::Global();
  reg.GetCounter("test.prom_counter")->Reset();
  reg.GetCounter("test.prom_counter")->Add(7);
  obs::Histogram* h = reg.GetHistogram("test.prom_hist", {1.0, 2.0});
  h->Reset();
  h->Observe(0.5);
  h->Observe(5.0);  // overflow
  const std::string text = obs::RenderPrometheusText();
  const std::vector<PromSample> samples = ParsePrometheusText(text);
  const PromSample* c = FindSample(samples, "test_prom_counter");
  ASSERT_NE(c, nullptr);
  EXPECT_DOUBLE_EQ(c->value, 7.0);
  const PromSample* binf =
      FindSample(samples, "test_prom_hist_bucket", "le=\"+Inf\"");
  ASSERT_NE(binf, nullptr);
  EXPECT_DOUBLE_EQ(binf->value, 2.0);
  // Cumulative buckets never decrease across any rendered histogram.
  std::string current;
  double last = 0.0;
  for (const PromSample& s : samples) {
    if (s.name.size() < 7 ||
        s.name.compare(s.name.size() - 7, 7, "_bucket") != 0) {
      continue;
    }
    if (s.name != current) {
      current = s.name;
      last = 0.0;
    }
    EXPECT_GE(s.value, last) << s.name << "{" << s.labels << "}";
    last = s.value;
  }
}

// ---------------------------------------------------------------------------
// Counter-enriched spans
// ---------------------------------------------------------------------------

/// Deterministic fake hardware-counter source.
class FakeCounterProvider : public obs::CounterProvider {
 public:
  const char* name() const override { return "fake"; }
  bool StartThread(std::string*) override { return true; }
  obs::HwCounters Read() override {
    obs::HwCounters c;
    c.cycles = reads_ * 1000;
    c.instructions = reads_ * 2000;
    c.llc_misses = reads_ * 10;
    ++reads_;
    return c;
  }

 private:
  uint64_t reads_ = 1;
};

/// Provider that always refuses, with a recognizable reason.
class RefusingCounterProvider : public obs::CounterProvider {
 public:
  const char* name() const override { return "refuser"; }
  bool StartThread(std::string* reason) override {
    if (reason != nullptr) *reason = "refused for test";
    return false;
  }
  obs::HwCounters Read() override { return {}; }
};

TEST(CountersTest, SpanProfileRecordsCpuTime) {
  obs::Tracer::Reset();
  {
    OPTINTER_TRACE_SPAN("cpu_probe");
    // Burn enough CPU that CLOCK_THREAD_CPUTIME_ID ticks.
    volatile double x = 1.0;
    for (int i = 0; i < 2000000; ++i) x = x * 1.0000001 + 1e-9;
  }
  const obs::SpanProfile profile = obs::Tracer::Collect();
  const obs::SpanProfile* s = FindChild(profile, "cpu_probe");
  ASSERT_NE(s, nullptr);
  EXPECT_GT(s->total_ns, 0u);
  if (obs::CountersStatus().cpu_time) {
    EXPECT_GT(s->cpu_ns, 0u);
    EXPECT_LE(s->cpu_seconds(), s->total_seconds() * 1.5 + 0.01);
  }
}

TEST(CountersTest, FakeProviderFeedsHardwareColumns) {
  FakeCounterProvider fake;
  obs::SetCounterProvider(&fake);
  obs::Tracer::Reset();
  {
    OPTINTER_TRACE_SPAN("hw_probe");
  }
  const obs::SpanProfile profile = obs::Tracer::Collect();
  obs::SetCounterProvider(nullptr);
  const obs::SpanProfile* s = FindChild(profile, "hw_probe");
  ASSERT_NE(s, nullptr);
  // Fake deltas: one Read at span entry, one at exit.
  EXPECT_EQ(s->cycles, 1000u);
  EXPECT_EQ(s->instructions, 2000u);
  EXPECT_EQ(s->llc_misses, 10u);
}

TEST(CountersTest, StatusReportsProviderAndDegradation) {
  RefusingCounterProvider refuser;
  obs::SetCounterProvider(&refuser);
  obs::Tracer::Reset();
  {
    OPTINTER_TRACE_SPAN("degraded_probe");
  }
  const obs::CounterStatus status = obs::CountersStatus();
  EXPECT_EQ(status.provider, "refuser");
  EXPECT_FALSE(status.hardware);
  EXPECT_EQ(status.degradation_reason, "refused for test");

  // The profile JSON carries the per-span columns and the run-level
  // counter status, so a report always says why hardware columns are 0.
  const obs::JsonValue j = obs::Tracer::ToJson(obs::Tracer::Collect());
  obs::SetCounterProvider(nullptr);
  ASSERT_NE(j.Find("counter_status"), nullptr);
  const obs::JsonValue& cs = *j.Find("counter_status");
  EXPECT_EQ(cs.Find("provider")->string_value(), "refuser");
  EXPECT_FALSE(cs.Find("hardware")->bool_value());
  EXPECT_EQ(cs.Find("degradation_reason")->string_value(),
            "refused for test");
  ASSERT_GT(j.Find("children")->size(), 0u);
  const obs::JsonValue& child = j.Find("children")->at(0);
  ASSERT_NE(child.Find("cpu_ns"), nullptr);
  ASSERT_NE(child.Find("cycles"), nullptr);
  ASSERT_NE(child.Find("instructions"), nullptr);
  ASSERT_NE(child.Find("llc_misses"), nullptr);
}

// ---------------------------------------------------------------------------
// Timeline (Chrome trace-event export)
// ---------------------------------------------------------------------------

/// RAII guard so a failed ASSERT cannot leave the timeline enabled for
/// later tests.
struct TimelineGuard {
  explicit TimelineGuard(const std::string& path, size_t capacity) {
    obs::Timeline::EnableForTest(path, capacity);
  }
  ~TimelineGuard() { obs::Timeline::DisableForTest(); }
};

TEST(TimelineTest, RendersValidChromeTraceJson) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "optinter_timeline.json")
          .string();
  TimelineGuard guard(path, 1024);
  {
    OPTINTER_TRACE_SPAN("tl_outer");
    {
      OPTINTER_TRACE_SPAN("tl_inner");
    }
    obs::Timeline::RecordInstant("tl_marker", "k=v");
  }
  const std::string json = obs::Timeline::RenderJson();
  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::JsonValue::Parse(json, &doc, &error)) << error;
  const obs::JsonValue* events = doc.Find("traceEvents");
  ASSERT_NE(events, nullptr);
  size_t begins = 0, ends = 0, instants = 0;
  for (size_t i = 0; i < events->size(); ++i) {
    const obs::JsonValue& e = events->at(i);
    const std::string& ph = e.Find("ph")->string_value();
    ASSERT_NE(e.Find("pid"), nullptr);
    ASSERT_NE(e.Find("tid"), nullptr);
    if (ph == "M") continue;  // thread-name metadata
    ASSERT_NE(e.Find("ts"), nullptr);
    const std::string& name = e.Find("name")->string_value();
    if (ph == "B" && (name == "tl_outer" || name == "tl_inner")) ++begins;
    if (ph == "E" && (name == "tl_outer" || name == "tl_inner")) ++ends;
    if (ph == "i" && name == "tl_marker") {
      ++instants;
      EXPECT_EQ(e.Find("s")->string_value(), "t");
      EXPECT_EQ(e.Find("args")->Find("detail")->string_value(), "k=v");
    }
  }
  EXPECT_EQ(begins, 2u);
  EXPECT_EQ(ends, 2u);
  EXPECT_EQ(instants, 1u);
  // Events come out sorted by timestamp (Perfetto requirement).
  double last_ts = -1.0;
  for (size_t i = 0; i < events->size(); ++i) {
    const obs::JsonValue* ts = events->at(i).Find("ts");
    if (ts == nullptr) continue;
    EXPECT_GE(ts->number(), last_ts);
    last_ts = ts->number();
  }

  // FlushTo writes the same document to disk, atomically.
  ASSERT_TRUE(obs::Timeline::FlushTo(path, &error)) << error;
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buffer;
  buffer << in.rdbuf();
  obs::JsonValue from_disk;
  ASSERT_TRUE(obs::JsonValue::Parse(buffer.str(), &from_disk, &error))
      << error;
  ASSERT_NE(from_disk.Find("traceEvents"), nullptr);
  std::filesystem::remove(path);
}

TEST(TimelineTest, RingDropsOldestAndCountsDrops) {
  const std::string path =
      (std::filesystem::temp_directory_path() / "optinter_timeline2.json")
          .string();
  TimelineGuard guard(path, 8);
  for (int i = 0; i < 20; ++i) {
    obs::Timeline::RecordInstant("drop_probe");
  }
  EXPECT_EQ(obs::Timeline::DroppedEvents(), 12u);
  const std::string json = obs::Timeline::RenderJson();
  obs::JsonValue doc;
  std::string error;
  ASSERT_TRUE(obs::JsonValue::Parse(json, &doc, &error)) << error;
  // The ring kept only the newest `capacity` events...
  size_t kept = 0;
  const obs::JsonValue* events = doc.Find("traceEvents");
  for (size_t i = 0; i < events->size(); ++i) {
    if (events->at(i).Find("name")->string_value() == "drop_probe") ++kept;
  }
  EXPECT_EQ(kept, 8u);
  // ...and the export says how many were lost.
  EXPECT_EQ(doc.Find("otherData")->Find("dropped_events")->number(), 12.0);
}

TEST(TimelineTest, DisabledRecordingIsInert) {
  obs::Timeline::DisableForTest();
  EXPECT_FALSE(obs::Timeline::Enabled());
  obs::Timeline::RecordInstant("ignored");
  std::string error;
  EXPECT_FALSE(obs::Timeline::Flush(&error));  // no path configured
}

// ---------------------------------------------------------------------------
// Logging satellites
// ---------------------------------------------------------------------------

TEST(LoggingTest, LogLevelFromString) {
  LogLevel level = LogLevel::kInfo;
  EXPECT_TRUE(LogLevelFromString("debug", &level));
  EXPECT_EQ(level, LogLevel::kDebug);
  EXPECT_TRUE(LogLevelFromString("WARNING", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(LogLevelFromString("warn", &level));
  EXPECT_EQ(level, LogLevel::kWarning);
  EXPECT_TRUE(LogLevelFromString("3", &level));
  EXPECT_EQ(level, LogLevel::kError);
  level = LogLevel::kDebug;
  EXPECT_FALSE(LogLevelFromString("nope", &level));
  EXPECT_EQ(level, LogLevel::kDebug);  // untouched on failure
}

TEST(LoggingTest, LinePrefixHasLevelTimestampThreadAndLocation) {
  SetLogLevel(LogLevel::kInfo);
  std::ostringstream captured;
  std::streambuf* old = std::cerr.rdbuf(captured.rdbuf());
  LOG_INFO() << "prefix format probe";
  std::cerr.rdbuf(old);
  const std::string line = captured.str();
  // "[I HH:MM:SS.mmm tN file:line] prefix format probe\n"
  ASSERT_FALSE(line.empty());
  EXPECT_EQ(line.substr(0, 3), "[I ");
  EXPECT_NE(line.find(" t"), std::string::npos);
  EXPECT_NE(line.find("obs_test.cc:"), std::string::npos);
  EXPECT_NE(line.find("] prefix format probe\n"), std::string::npos);
  // Timestamp shape: two ':' in HH:MM:SS and one '.' before millis.
  const size_t ts_start = 3;
  EXPECT_EQ(line[ts_start + 2], ':');
  EXPECT_EQ(line[ts_start + 5], ':');
  EXPECT_EQ(line[ts_start + 8], '.');
}

TEST(LoggingTest, BelowLevelLinesAreSuppressed) {
  SetLogLevel(LogLevel::kWarning);
  std::ostringstream captured;
  std::streambuf* old = std::cerr.rdbuf(captured.rdbuf());
  LOG_INFO() << "should not appear";
  LOG_WARNING() << "should appear";
  std::cerr.rdbuf(old);
  SetLogLevel(LogLevel::kInfo);
  const std::string out = captured.str();
  EXPECT_EQ(out.find("should not appear"), std::string::npos);
  EXPECT_NE(out.find("should appear"), std::string::npos);
}

TEST(LoggingTest, ConcurrentLinesDoNotInterleave) {
  SetLogLevel(LogLevel::kInfo);
  std::ostringstream captured;
  std::streambuf* old = std::cerr.rdbuf(captured.rdbuf());
  ThreadPool pool(4);
  constexpr int kLines = 200;
  for (int i = 0; i < kLines; ++i) {
    pool.Submit([] { LOG_INFO() << "interleave-probe-payload"; });
  }
  pool.Wait();
  std::cerr.rdbuf(old);
  // Every emitted line contains the intact payload exactly once.
  std::istringstream lines(captured.str());
  std::string line;
  int count = 0;
  while (std::getline(lines, line)) {
    EXPECT_NE(line.find("interleave-probe-payload"), std::string::npos)
        << "torn line: " << line;
    ++count;
  }
  EXPECT_EQ(count, kLines);
}

// ---------------------------------------------------------------------------
// Trainer JSON
// ---------------------------------------------------------------------------

TEST(TrainerJsonTest, TelemetryRoundTripsThroughJson) {
  TrainTelemetry t;
  EpochTelemetry e;
  e.epoch = 0;
  e.train_seconds = 1.5;
  e.eval_seconds = 0.25;
  e.train_rows_per_sec = 1000.0;
  e.mean_train_loss = 0.693;
  e.improved = true;
  t.epochs.push_back(e);
  t.train_seconds_total = 1.5;
  t.eval_seconds_total = 0.25;
  t.train_rows_per_sec = 1000.0;
  t.best_epoch = 0;
  t.early_stopped = false;
  t.restored_best_snapshot = true;

  const obs::JsonValue j = TelemetryToJson(t);
  EXPECT_EQ(j.Find("epochs")->size(), 1u);
  const obs::JsonValue& ej = j.Find("epochs")->at(0);
  EXPECT_DOUBLE_EQ(ej.Find("train_seconds")->number(), 1.5);
  EXPECT_TRUE(ej.Find("improved")->bool_value());
  EXPECT_DOUBLE_EQ(j.Find("train_seconds_total")->number(), 1.5);
  EXPECT_TRUE(j.Find("restored_best_snapshot")->bool_value());
  // Serialized form parses back to an equal value.
  obs::JsonValue parsed;
  std::string error;
  ASSERT_TRUE(obs::JsonValue::Parse(j.Serialize(2), &parsed, &error))
      << error;
  EXPECT_EQ(parsed, j);
}

}  // namespace
}  // namespace optinter
