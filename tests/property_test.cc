// Property-based and cross-implementation consistency tests: invariants
// that must hold for randomized inputs across parameter sweeps.

#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "data/encoder.h"
#include "metrics/metrics.h"
#include "metrics/mutual_information.h"
#include "metrics/significance.h"
#include "synth/prepare.h"
#include "tensor/kernels.h"

namespace optinter {
namespace {

// ---------------------------------------------------------------------------
// GEMM variants must agree with explicit transposition.
// ---------------------------------------------------------------------------

struct GemmShape {
  size_t m, k, n;
};

class GemmConsistencyTest : public ::testing::TestWithParam<GemmShape> {};

TEST_P(GemmConsistencyTest, NTMatchesNNWithTransposedB) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 1000 + k * 10 + n);
  std::vector<float> a(m * k), b(n * k), bt(k * n);
  for (auto& v : a) v = static_cast<float>(rng.Uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.Uniform(-1, 1));
  for (size_t r = 0; r < n; ++r) {
    for (size_t c = 0; c < k; ++c) bt[c * n + r] = b[r * k + c];
  }
  std::vector<float> c1(m * n), c2(m * n);
  GemmNT(a.data(), b.data(), c1.data(), m, k, n);
  GemmNN(a.data(), bt.data(), c2.data(), m, k, n);
  for (size_t i = 0; i < c1.size(); ++i) {
    ASSERT_NEAR(c1[i], c2[i], 1e-4f);
  }
}

TEST_P(GemmConsistencyTest, TNMatchesNNWithTransposedA) {
  const auto [m, k, n] = GetParam();
  Rng rng(m * 999 + k * 7 + n);
  std::vector<float> a(m * k), at(k * m), b(m * n);
  for (auto& v : a) v = static_cast<float>(rng.Uniform(-1, 1));
  for (auto& v : b) v = static_cast<float>(rng.Uniform(-1, 1));
  for (size_t r = 0; r < m; ++r) {
    for (size_t c = 0; c < k; ++c) at[c * m + r] = a[r * k + c];
  }
  std::vector<float> c1(k * n), c2(k * n);
  GemmTN(a.data(), b.data(), c1.data(), m, k, n);
  GemmNN(at.data(), b.data(), c2.data(), k, m, n);
  for (size_t i = 0; i < c1.size(); ++i) {
    ASSERT_NEAR(c1[i], c2[i], 1e-4f);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, GemmConsistencyTest,
    ::testing::Values(GemmShape{1, 1, 1}, GemmShape{3, 5, 7},
                      GemmShape{16, 16, 16}, GemmShape{33, 65, 17},
                      GemmShape{128, 64, 96}),
    [](const auto& info) {
      return "m" + std::to_string(info.param.m) + "k" +
             std::to_string(info.param.k) + "n" +
             std::to_string(info.param.n);
    });

// ---------------------------------------------------------------------------
// Metric invariants on randomized inputs.
// ---------------------------------------------------------------------------

TEST(MetricPropertyTest, AucAntisymmetryUnderScoreNegation) {
  Rng rng(11);
  for (int trial = 0; trial < 10; ++trial) {
    std::vector<float> scores(200), labels(200);
    for (size_t i = 0; i < 200; ++i) {
      scores[i] = static_cast<float>(rng.Uniform(-2, 2));
      labels[i] = rng.Bernoulli(0.4) ? 1.0f : 0.0f;
    }
    if (std::accumulate(labels.begin(), labels.end(), 0.0f) == 0.0f ||
        std::accumulate(labels.begin(), labels.end(), 0.0f) == 200.0f) {
      continue;
    }
    std::vector<float> negated(scores);
    for (auto& s : negated) s = -s;
    EXPECT_NEAR(Auc(scores, labels) + Auc(negated, labels), 1.0, 1e-9);
  }
}

TEST(MetricPropertyTest, LogLossLowerBoundedByEntropy) {
  // For any predictor, expected logloss >= H(y); the base-rate constant
  // predictor achieves it. Check with the base-rate prediction.
  Rng rng(13);
  std::vector<float> labels(5000);
  double pos = 0.0;
  for (auto& y : labels) {
    y = rng.Bernoulli(0.27) ? 1.0f : 0.0f;
    pos += y;
  }
  const float base = static_cast<float>(pos / labels.size());
  std::vector<float> probs(labels.size(), base);
  const double entropy =
      -(base * std::log(base) + (1 - base) * std::log(1 - base));
  EXPECT_NEAR(LogLoss(probs, labels), entropy, 1e-6);
  // A miscalibrated constant must be worse.
  std::vector<float> off(labels.size(), base * 0.5f);
  EXPECT_GT(LogLoss(off, labels), entropy);
}

TEST(MetricPropertyTest, MiUpperBoundedByLabelEntropy) {
  Rng rng(17);
  EncodedDataset d;
  d.schema = DatasetSchema({{"a", FieldType::kCategorical},
                            {"b", FieldType::kCategorical}});
  d.num_rows = 1000;
  d.cat_ids.resize(2000);
  d.cat_vocab_sizes = {20, 20};
  d.labels.resize(1000);
  for (size_t r = 0; r < 1000; ++r) {
    d.cat_ids[r * 2] = static_cast<int32_t>(rng.UniformInt(20));
    d.cat_ids[r * 2 + 1] = static_cast<int32_t>(rng.UniformInt(20));
    d.labels[r] = rng.Bernoulli(0.3) ? 1.0f : 0.0f;
  }
  std::vector<size_t> rows(1000);
  std::iota(rows.begin(), rows.end(), 0);
  const double h = LabelEntropy(d, rows);
  const double mi = PairLabelMutualInformation(d, 0, rows);
  EXPECT_GE(mi, 0.0);
  EXPECT_LE(mi, h + 1e-12);
}

TEST(MetricPropertyTest, PairedTTestPShrinksWithEffectSize) {
  // Per-seed jitter keeps the paired differences from having zero
  // variance (a constant shift would trivially yield p = 0).
  const std::vector<double> base = {0.80, 0.79, 0.81, 0.80, 0.78,
                                    0.82, 0.80, 0.79};
  const std::vector<double> jitter = {0.003, -0.002, 0.001, -0.003,
                                      0.002, -0.001, 0.003, -0.002};
  double prev_p = 1.1;
  for (double delta : {0.001, 0.005, 0.02}) {
    std::vector<double> better(base);
    for (size_t i = 0; i < better.size(); ++i) {
      better[i] += delta + jitter[i];
    }
    const double p = PairedTTest(better, base).p_value;
    EXPECT_LT(p, prev_p);
    prev_p = p;
  }
}

TEST(MetricPropertyTest, WelchSymmetric) {
  const std::vector<double> a = {1.0, 1.1, 0.9, 1.05};
  const std::vector<double> b = {2.0, 2.2, 1.8, 2.1};
  auto ab = WelchTTest(a, b);
  auto ba = WelchTTest(b, a);
  EXPECT_NEAR(ab.p_value, ba.p_value, 1e-12);
  EXPECT_NEAR(ab.t_statistic, -ba.t_statistic, 1e-12);
}

// ---------------------------------------------------------------------------
// Pipeline invariants across every dataset profile.
// ---------------------------------------------------------------------------

class ProfilePipelineTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ProfilePipelineTest, EncodedDatasetInvariants) {
  PrepareOptions opts;
  opts.rows_scale = 0.1;  // keep the sweep fast
  auto prepared = PrepareProfile(GetParam(), opts);
  ASSERT_TRUE(prepared.ok()) << prepared.status().ToString();
  const EncodedDataset& d = prepared->data;
  const Splits& s = prepared->splits;

  // Splits partition the rows.
  EXPECT_EQ(s.train.size() + s.val.size() + s.test.size(), d.num_rows);

  // Every id is within its vocab.
  for (size_t r = 0; r < d.num_rows; ++r) {
    for (size_t f = 0; f < d.num_categorical(); ++f) {
      ASSERT_GE(d.cat(r, f), 0);
      ASSERT_LT(static_cast<size_t>(d.cat(r, f)), d.cat_vocab_sizes[f]);
    }
    for (size_t p = 0; p < d.num_pairs(); ++p) {
      ASSERT_GE(d.cross(r, p), 0);
      ASSERT_LT(static_cast<size_t>(d.cross(r, p)),
                d.cross_vocab_sizes[p]);
    }
    for (size_t f = 0; f < d.num_continuous(); ++f) {
      ASSERT_GE(d.cont(r, f), 0.0f);
      ASSERT_LE(d.cont(r, f), 1.0f);
    }
  }

  // Cross vocabularies never exceed the product of the field vocabs and
  // never exceed the fitted row count + OOV.
  const auto pairs = EnumeratePairs(d.num_categorical());
  for (size_t p = 0; p < d.num_pairs(); ++p) {
    const auto [i, j] = pairs[p];
    EXPECT_LE(d.cross_vocab_sizes[p],
              d.cat_vocab_sizes[i] * d.cat_vocab_sizes[j] + 1);
    EXPECT_LE(d.cross_vocab_sizes[p], s.train.size() + 1);
  }

  // Positive ratio lands near the profile's target.
  EXPECT_NEAR(d.PositiveRatio(), prepared->config.target_pos_ratio, 0.05);
}

INSTANTIATE_TEST_SUITE_P(AllProfiles, ProfilePipelineTest,
                         ::testing::Values("criteo_like", "avazu_like",
                                           "ipinyou_like", "private_like",
                                           "tiny"),
                         [](const auto& info) { return info.param; });

// ---------------------------------------------------------------------------
// Encoder fit/transform separation.
// ---------------------------------------------------------------------------

TEST(EncoderPropertyTest, TestRowsNeverEnlargeVocab) {
  SynthConfig cfg = TinyConfig();
  cfg.num_rows = 3000;
  RawDataset raw = GenerateSynthetic(cfg);
  std::vector<size_t> first_half(1500), all_rows(3000);
  std::iota(first_half.begin(), first_half.end(), 0);
  std::iota(all_rows.begin(), all_rows.end(), 0);
  EncoderOptions opts;
  opts.cat_min_count = 2;
  auto enc_half = EncodeDataset(raw, first_half, opts);
  ASSERT_TRUE(enc_half.ok());
  auto enc_all = EncodeDataset(raw, all_rows, opts);
  ASSERT_TRUE(enc_all.ok());
  for (size_t f = 0; f < raw.schema.num_categorical(); ++f) {
    EXPECT_LE(enc_half->cat_vocab_sizes[f], enc_all->cat_vocab_sizes[f]);
  }
}

// ---------------------------------------------------------------------------
// Tensor / RNG edge behaviour.
// ---------------------------------------------------------------------------

TEST(DeathTest, TensorBoundsChecked) {
  Tensor t({2, 2});
  EXPECT_DEATH(t.at(2, 0), "Check failed");
  EXPECT_DEATH(t.at(0, 5), "Check failed");
}

TEST(DeathTest, ReshapeSizeMismatchChecked) {
  Tensor t({2, 3});
  EXPECT_DEATH(t.Reshape({4, 4}), "Check failed");
}

TEST(DeathTest, AucRequiresBothClasses) {
  const std::vector<float> scores = {0.1f, 0.2f};
  const std::vector<float> all_pos = {1.0f, 1.0f};
  EXPECT_DEATH(Auc(scores, all_pos), "Check failed");
}

TEST(RngPropertyTest, UniformIntBoundaryOne) {
  Rng rng(1);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(rng.UniformInt(1), 0u);
}

}  // namespace
}  // namespace optinter
