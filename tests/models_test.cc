#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>

#include "core/zoo.h"
#include "models/deep_models.h"
#include "models/interaction.h"
#include "models/fm_family.h"
#include "models/lr.h"
#include "models/poly2.h"
#include "test_data.h"
#include "train/trainer.h"

namespace optinter {
namespace {

using testing::HeadBatch;
using testing::SharedTinyData;

HyperParams TinyHp() {
  HyperParams hp = DefaultHyperParams("tiny");
  hp.seed = 99;
  return hp;
}

// ---------------------------------------------------------------------------
// Parameterized over every zoo baseline.
// ---------------------------------------------------------------------------

class ZooModelTest : public ::testing::TestWithParam<std::string> {};

TEST_P(ZooModelTest, Constructs) {
  const auto& p = SharedTinyData();
  auto model = CreateBaseline(GetParam(), p.data, TinyHp());
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_GT((*model)->ParamCount(), 0u);
}

TEST_P(ZooModelTest, PredictionsAreProbabilities) {
  const auto& p = SharedTinyData();
  auto model = CreateBaseline(GetParam(), p.data, TinyHp());
  ASSERT_TRUE(model.ok());
  Batch b = HeadBatch(p, 64);
  std::vector<float> probs;
  (*model)->Predict(b, &probs);
  ASSERT_EQ(probs.size(), 64u);
  for (float q : probs) {
    EXPECT_GT(q, 0.0f);
    EXPECT_LT(q, 1.0f);
  }
}

TEST_P(ZooModelTest, LossDecreasesOverRepeatedSteps) {
  const auto& p = SharedTinyData();
  auto model = CreateBaseline(GetParam(), p.data, TinyHp());
  ASSERT_TRUE(model.ok());
  Batch b = HeadBatch(p, 256);
  float first = 0.0f, last = 0.0f;
  for (int step = 0; step < 40; ++step) {
    const float loss = (*model)->TrainStep(b);
    ASSERT_TRUE(std::isfinite(loss));
    if (step == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first) << GetParam()
                         << " did not reduce training loss";
}

TEST_P(ZooModelTest, DeterministicGivenSeed) {
  const auto& p = SharedTinyData();
  auto m1 = CreateBaseline(GetParam(), p.data, TinyHp());
  auto m2 = CreateBaseline(GetParam(), p.data, TinyHp());
  ASSERT_TRUE(m1.ok());
  ASSERT_TRUE(m2.ok());
  Batch b = HeadBatch(p, 64);
  (*m1)->TrainStep(b);
  (*m2)->TrainStep(b);
  std::vector<float> p1, p2;
  (*m1)->Predict(b, &p1);
  (*m2)->Predict(b, &p2);
  for (size_t i = 0; i < p1.size(); ++i) {
    EXPECT_FLOAT_EQ(p1[i], p2[i]) << GetParam();
  }
}

TEST_P(ZooModelTest, LearnsAboveChanceAuc) {
  const auto& p = SharedTinyData();
  auto model = CreateBaseline(GetParam(), p.data, TinyHp());
  ASSERT_TRUE(model.ok());
  TrainOptions opts;
  opts.epochs = 2;
  opts.batch_size = 256;
  opts.seed = 5;
  opts.patience = 0;
  TrainSummary s = TrainModel(model->get(), p.data, p.splits, opts);
  EXPECT_GT(s.final_test.auc, 0.55) << GetParam();
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselines, ZooModelTest,
    ::testing::Values("LR", "Poly2", "FM", "FFM", "FwFM", "FmFM", "FNN",
                      "IPNN", "OPNN", "DeepFM", "PIN", "OptInter-F",
                      "OptInter-M"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

// ---------------------------------------------------------------------------
// Zoo plumbing
// ---------------------------------------------------------------------------

TEST(ZooTest, UnknownModelRejected) {
  const auto& p = SharedTinyData();
  auto model = CreateBaseline("TransformerXL", p.data, TinyHp());
  EXPECT_FALSE(model.ok());
  EXPECT_EQ(model.status().code(), StatusCode::kNotFound);
}

TEST(ZooTest, CrossRequiredModelsFlagged) {
  EXPECT_TRUE(BaselineNeedsCross("Poly2"));
  EXPECT_TRUE(BaselineNeedsCross("OptInter-M"));
  EXPECT_FALSE(BaselineNeedsCross("FM"));
  EXPECT_FALSE(BaselineNeedsCross("FNN"));
}

TEST(ZooTest, TableVOrderMatchesPaperGroups) {
  auto names = TableVBaselineNames();
  // LR first (naïve/shallow), OptInter-M last of the baselines.
  EXPECT_EQ(names.front(), "LR");
  EXPECT_EQ(names.back(), "OptInter-M");
  EXPECT_EQ(names.size(), 9u);
}

TEST(ZooTest, ModelsNamedAsInPaper) {
  const auto& p = SharedTinyData();
  for (const auto& name :
       {"LR", "Poly2", "FM", "IPNN", "DeepFM", "PIN", "OptInter-M"}) {
    auto model = CreateBaseline(name, p.data, TinyHp());
    ASSERT_TRUE(model.ok());
    EXPECT_EQ((*model)->Name(), name);
  }
}

// ---------------------------------------------------------------------------
// Parameter accounting
// ---------------------------------------------------------------------------

TEST(ParamCountTest, LrIsVocabPlusBias) {
  const auto& p = SharedTinyData();
  LrModel lr(p.data, TinyHp());
  size_t expected = p.data.TotalOrigVocab() * 1 +
                    p.data.num_continuous() * 1 + 1;
  EXPECT_EQ(lr.ParamCount(), expected);
}

TEST(ParamCountTest, Poly2AddsCrossVocab) {
  const auto& p = SharedTinyData();
  Poly2Model poly(p.data, TinyHp());
  LrModel lr(p.data, TinyHp());
  // Expected cross-weight rows per pair, through the same backend
  // resolution the layer applies (dense by default == TotalCrossVocab;
  // honest smaller counts under the OPTINTER_EMBED_BACKEND CI override).
  size_t cross_rows = 0;
  for (size_t v : p.data.cross_vocab_sizes) {
    EmbeddingTable ref("ref", v, 1, 0.0f, 0.0f,
                       ResolveBackendForVocab({}, v));
    cross_rows += ref.ParamCount();
  }
  EXPECT_EQ(poly.ParamCount(), lr.ParamCount() + cross_rows);
}

TEST(ParamCountTest, FmHasLinearPlusLatent) {
  const auto& p = SharedTinyData();
  HyperParams hp = TinyHp();
  FmFamilyModel fm(p.data, hp, FmVariant::kFm);
  const size_t vocab = p.data.TotalOrigVocab() + p.data.num_continuous();
  EXPECT_EQ(fm.ParamCount(), vocab * 1 + vocab * hp.embed_dim + 1);
}

TEST(ParamCountTest, FfmLatentIsFieldWide) {
  // FFM stores one latent vector per opponent field: F× the FM latent.
  const auto& p = SharedTinyData();
  HyperParams hp = TinyHp();
  FmFamilyModel fm(p.data, hp, FmVariant::kFm);
  FmFamilyModel ffm(p.data, hp, FmVariant::kFfm);
  const size_t fields = p.data.num_categorical() + p.data.num_continuous();
  const size_t vocab = p.data.TotalOrigVocab() + p.data.num_continuous();
  EXPECT_EQ(ffm.ParamCount() - fm.ParamCount(),
            vocab * hp.embed_dim * (fields - 1));
}

TEST(ParamCountTest, FwFmAddsPairScalars) {
  const auto& p = SharedTinyData();
  HyperParams hp = TinyHp();
  FmFamilyModel fm(p.data, hp, FmVariant::kFm);
  FmFamilyModel fwfm(p.data, hp, FmVariant::kFwFm);
  const size_t fields = p.data.num_categorical() + p.data.num_continuous();
  const size_t pairs = fields * (fields - 1) / 2;
  EXPECT_EQ(fwfm.ParamCount(), fm.ParamCount() + pairs);
}

TEST(ParamCountTest, FmFmAddsPairMatrices) {
  const auto& p = SharedTinyData();
  HyperParams hp = TinyHp();
  FmFamilyModel fm(p.data, hp, FmVariant::kFm);
  FmFamilyModel fmfm(p.data, hp, FmVariant::kFmFm);
  const size_t fields = p.data.num_categorical() + p.data.num_continuous();
  const size_t pairs = fields * (fields - 1) / 2;
  EXPECT_EQ(fmfm.ParamCount(),
            fm.ParamCount() + pairs * hp.embed_dim * hp.embed_dim);
}

TEST(ParamCountTest, MemorizedDwarfsFactorized) {
  // The paper's central efficiency observation: the all-memorize model is
  // far larger than the all-factorize model on the same data. Holds for
  // dense and QR layouts; the tiered backend exists precisely to break
  // it, so skip under that global override.
  if (const char* bk = std::getenv("OPTINTER_EMBED_BACKEND");
      bk != nullptr && std::strcmp(bk, "tiered") == 0) {
    GTEST_SKIP() << "tiered compression inverts this size comparison";
  }
  const auto& p = SharedTinyData();
  HyperParams hp = TinyHp();
  auto mem = CreateBaseline("OptInter-M", p.data, hp);
  auto fac = CreateBaseline("OptInter-F", p.data, hp);
  ASSERT_TRUE(mem.ok());
  ASSERT_TRUE(fac.ok());
  EXPECT_GT((*mem)->ParamCount(), (*fac)->ParamCount());
}

// ---------------------------------------------------------------------------
// Interaction bookkeeping
// ---------------------------------------------------------------------------

TEST(InteractionTest, CountsAndString) {
  Architecture arch = {InterMethod::kMemorize, InterMethod::kFactorize,
                       InterMethod::kFactorize, InterMethod::kNaive};
  auto counts = CountArchitecture(arch);
  EXPECT_EQ(counts.memorize, 1u);
  EXPECT_EQ(counts.factorize, 2u);
  EXPECT_EQ(counts.naive, 1u);
  EXPECT_EQ(ArchCountsToString(counts), "[1,2,1]");
}

TEST(InteractionTest, UniformBuilders) {
  EXPECT_EQ(CountArchitecture(AllMemorize(5)).memorize, 5u);
  EXPECT_EQ(CountArchitecture(AllFactorize(5)).factorize, 5u);
  EXPECT_EQ(CountArchitecture(AllNaive(5)).naive, 5u);
}

TEST(InteractionTest, MethodNames) {
  EXPECT_STREQ(InterMethodName(InterMethod::kMemorize), "memorize");
  EXPECT_STREQ(InterMethodName(InterMethod::kFactorize), "factorize");
  EXPECT_STREQ(InterMethodName(InterMethod::kNaive), "naive");
}

}  // namespace
}  // namespace optinter
