#include <gtest/gtest.h>

#include <cstdlib>
#include <cstring>
#include <set>

#include "core/autofis.h"
#include "core/fixed_arch_model.h"
#include "core/pipeline.h"
#include "core/search_model.h"
#include "test_data.h"

namespace optinter {
namespace {

using testing::HeadBatch;
using testing::SharedTinyData;

// Dense/QR layout arithmetic keeps the paper's cost hierarchy
// (memorize > factorize); a global tiered override shrinks memorized
// cross tables ~8x and flips those size comparisons by design.
bool TieredOverrideActive() {
  const char* bk = std::getenv("OPTINTER_EMBED_BACKEND");
  return bk != nullptr && std::strcmp(bk, "tiered") == 0;
}

HyperParams TinyHp() {
  HyperParams hp = DefaultHyperParams("tiny");
  hp.seed = 31;
  return hp;
}

// ---------------------------------------------------------------------------
// FixedArchModel
// ---------------------------------------------------------------------------

TEST(FixedArchTest, ParamCountDependsOnArchitecture) {
  if (TieredOverrideActive()) {
    GTEST_SKIP() << "tiered compression inverts the memorize/factorize "
                    "size hierarchy this test asserts";
  }
  const auto& p = SharedTinyData();
  HyperParams hp = TinyHp();
  auto naive = FixedArchModel::MakeFnn(p.data, hp);
  auto fact = FixedArchModel::MakeOptInterF(p.data, hp);
  auto mem = FixedArchModel::MakeOptInterM(p.data, hp);
  EXPECT_LT(naive->ParamCount(), fact->ParamCount());
  EXPECT_LT(fact->ParamCount(), mem->ParamCount());
}

TEST(FixedArchTest, MemorizedParamCountExact) {
  const auto& p = SharedTinyData();
  HyperParams hp = TinyHp();
  auto mem = FixedArchModel::MakeOptInterM(p.data, hp);
  auto naive = FixedArchModel::MakeFnn(p.data, hp);
  // The all-memorize model adds one s2-wide table per pair plus the wider
  // first MLP layer. Expected rows per pair go through the same backend
  // resolution the layer applies (dense default == the full cross vocab;
  // honest smaller counts under the OPTINTER_EMBED_BACKEND CI override).
  size_t cross_params = 0;
  for (size_t v : p.data.cross_vocab_sizes) {
    EmbeddingTable ref("ref", v, hp.cross_embed_dim, 0.0f, 0.0f,
                       ResolveBackendForVocab({}, v));
    cross_params += ref.ParamCount();
  }
  const size_t extra_cols = p.data.num_pairs() * hp.cross_embed_dim;
  const size_t first_hidden = hp.mlp_hidden.empty() ? 1 : hp.mlp_hidden[0];
  EXPECT_EQ(mem->ParamCount(),
            naive->ParamCount() + cross_params + extra_cols * first_hidden);
}

TEST(FixedArchTest, MixedArchitectureRuns) {
  const auto& p = SharedTinyData();
  HyperParams hp = TinyHp();
  Architecture arch(p.data.num_pairs(), InterMethod::kNaive);
  arch[0] = InterMethod::kMemorize;
  arch[1] = InterMethod::kFactorize;
  arch[4] = InterMethod::kMemorize;
  FixedArchModel model(p.data, arch, hp, "mixed");
  Batch b = HeadBatch(p, 128);
  float first = 0.0f, last = 0.0f;
  for (int i = 0; i < 30; ++i) {
    const float loss = model.TrainStep(b);
    if (i == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first);
  std::vector<float> probs;
  model.Predict(b, &probs);
  EXPECT_EQ(probs.size(), 128u);
}

TEST(FixedArchTest, NaiveArchNeedsNoCrossFeatures) {
  // FNN must be constructible on a dataset without cross features.
  const auto& p = SharedTinyData();
  RawDataset raw = GenerateSynthetic(p.cfg);
  EncoderOptions opts;
  auto enc = EncodeDataset(raw, p.splits.train, opts);
  ASSERT_TRUE(enc.ok());
  // No BuildCrossFeatures on purpose.
  auto fnn = FixedArchModel::MakeFnn(*enc, TinyHp());
  Batch b;
  b.data = &*enc;
  b.rows = p.splits.train.data();
  b.size = 32;
  std::vector<float> probs;
  fnn->Predict(b, &probs);
  EXPECT_EQ(probs.size(), 32u);
}

TEST(FixedArchTest, ArchAccessorRoundTrips) {
  const auto& p = SharedTinyData();
  Architecture arch = AllFactorize(p.data.num_pairs());
  arch[2] = InterMethod::kMemorize;
  FixedArchModel model(p.data, arch, TinyHp(), "x");
  EXPECT_EQ(model.arch(), arch);
  EXPECT_EQ(model.Name(), "x");
}

// ---------------------------------------------------------------------------
// SearchModel
// ---------------------------------------------------------------------------

TEST(SearchModelTest, PairProbabilitiesSumToOne) {
  const auto& p = SharedTinyData();
  SearchModel model(p.data, TinyHp());
  for (size_t q = 0; q < p.data.num_pairs(); ++q) {
    auto probs = model.PairProbabilities(q);
    EXPECT_NEAR(probs[0] + probs[1] + probs[2], 1.0f, 1e-5f);
  }
}

TEST(SearchModelTest, NearUniformAtInit) {
  // α starts at a small symmetric perturbation around zero, so the three
  // method probabilities begin close to (but not exactly) uniform.
  const auto& p = SharedTinyData();
  SearchModel model(p.data, TinyHp());
  auto probs = model.PairProbabilities(0);
  for (int k = 0; k < 3; ++k) EXPECT_NEAR(probs[k], 1.0f / 3.0f, 0.05f);
}

TEST(SearchModelTest, LowTemperatureSharpensSelection) {
  const auto& p = SharedTinyData();
  SearchModel model(p.data, TinyHp());
  model.mutable_alpha().value.at(0, 1) = 1.0f;  // prefer factorize
  model.SetTemperature(0.05f);
  auto probs = model.PairProbabilities(0);
  EXPECT_GT(probs[1], 0.999f);
}

TEST(SearchModelTest, ExtractArchitectureIsArgmax) {
  const auto& p = SharedTinyData();
  SearchModel model(p.data, TinyHp());
  model.mutable_alpha().value.at(0, 0) = 5.0f;
  model.mutable_alpha().value.at(1, 2) = 5.0f;
  Architecture arch = model.ExtractArchitecture();
  EXPECT_EQ(arch[0], InterMethod::kMemorize);
  EXPECT_EQ(arch[1], InterMethod::kNaive);
}

TEST(SearchModelTest, TrainStepUpdatesAlphaInJointMode) {
  const auto& p = SharedTinyData();
  SearchModel model(p.data, TinyHp(), UpdateMode::kJoint);
  Tensor before = model.alpha().value;
  Batch b = HeadBatch(p, 128);
  for (int i = 0; i < 5; ++i) model.TrainStep(b);
  bool changed = false;
  for (size_t i = 0; i < before.size(); ++i) {
    changed |= before[i] != model.alpha().value[i];
  }
  EXPECT_TRUE(changed);
}

TEST(SearchModelTest, BilevelTrainStepFreezesAlpha) {
  const auto& p = SharedTinyData();
  SearchModel model(p.data, TinyHp(), UpdateMode::kBilevel);
  Tensor before = model.alpha().value;
  Batch b = HeadBatch(p, 128);
  for (int i = 0; i < 3; ++i) model.TrainStep(b);
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i], model.alpha().value[i]);
  }
  // ArchStep moves alpha.
  model.ArchStep(b);
  bool changed = false;
  for (size_t i = 0; i < before.size(); ++i) {
    changed |= before[i] != model.alpha().value[i];
  }
  EXPECT_TRUE(changed);
}

TEST(SearchModelTest, LossDecreases) {
  const auto& p = SharedTinyData();
  SearchModel model(p.data, TinyHp());
  Batch b = HeadBatch(p, 256);
  float first = 0.0f, last = 0.0f;
  for (int i = 0; i < 30; ++i) {
    const float loss = model.TrainStep(b);
    ASSERT_TRUE(std::isfinite(loss));
    if (i == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first);
}

TEST(SearchModelTest, ParamCountIncludesAlpha) {
  const auto& p = SharedTinyData();
  SearchModel model(p.data, TinyHp());
  EXPECT_GT(model.ParamCount(), p.data.num_pairs() * 3);
}

// ---------------------------------------------------------------------------
// AutoFIS
// ---------------------------------------------------------------------------

TEST(AutoFisTest, GatesStartOnAndPrune) {
  const auto& p = SharedTinyData();
  HyperParams hp = TinyHp();
  hp.grda.c = 0.2f;  // strong sparsity so pruning shows quickly
  AutoFisSearchModel model(p.data, hp);
  Architecture arch0 = model.ExtractArchitecture();
  EXPECT_EQ(CountArchitecture(arch0).factorize, p.data.num_pairs());
  Batch b = HeadBatch(p, 256);
  for (int i = 0; i < 120; ++i) model.TrainStep(b);
  Architecture arch = model.ExtractArchitecture();
  auto counts = CountArchitecture(arch);
  EXPECT_EQ(counts.memorize, 0u);  // AutoFIS never memorizes
  EXPECT_GT(counts.naive, 0u);     // GRDA pruned something
}

TEST(AutoFisTest, PredictionsValid) {
  const auto& p = SharedTinyData();
  AutoFisSearchModel model(p.data, TinyHp());
  Batch b = HeadBatch(p, 64);
  std::vector<float> probs;
  model.Predict(b, &probs);
  for (float q : probs) {
    EXPECT_GT(q, 0.0f);
    EXPECT_LT(q, 1.0f);
  }
}

// ---------------------------------------------------------------------------
// Pipeline
// ---------------------------------------------------------------------------

TEST(PipelineTest, RandomArchitectureUsesAllMethods) {
  Rng rng(3);
  Architecture arch = RandomArchitecture(300, &rng);
  auto counts = CountArchitecture(arch);
  EXPECT_GT(counts.memorize, 50u);
  EXPECT_GT(counts.factorize, 50u);
  EXPECT_GT(counts.naive, 50u);
}

TEST(PipelineTest, SearchStageProducesFullArchitecture) {
  const auto& p = SharedTinyData();
  HyperParams hp = TinyHp();
  SearchOptions opts;
  opts.search_epochs = 1;
  SearchResult r = RunSearchStage(p.data, p.splits, hp, opts);
  EXPECT_EQ(r.arch.size(), p.data.num_pairs());
  EXPECT_GT(r.search_val.auc, 0.5);
  EXPECT_GT(r.seconds, 0.0);
}

TEST(PipelineTest, BilevelSearchRuns) {
  const auto& p = SharedTinyData();
  HyperParams hp = TinyHp();
  SearchOptions opts;
  opts.search_epochs = 1;
  opts.mode = UpdateMode::kBilevel;
  SearchResult r = RunSearchStage(p.data, p.splits, hp, opts);
  EXPECT_EQ(r.arch.size(), p.data.num_pairs());
}

TEST(PipelineTest, FullOptInterPipeline) {
  const auto& p = SharedTinyData();
  HyperParams hp = TinyHp();
  SearchOptions sopts;
  sopts.search_epochs = 2;
  TrainOptions topts;
  topts.epochs = 2;
  topts.batch_size = hp.batch_size;
  topts.seed = hp.seed;
  OptInterResult r = RunOptInter(p.data, p.splits, hp, sopts, topts);
  EXPECT_GT(r.retrain.final_test.auc, 0.55);
  EXPECT_GT(r.param_count, 0u);
  // Re-trained model must not exceed the all-memorize size. Dense/QR
  // only: tiered compression makes cross tables so small that the
  // all-memorize model no longer upper-bounds every mixed architecture.
  if (!TieredOverrideActive()) {
    auto mem = FixedArchModel::MakeOptInterM(p.data, hp);
    EXPECT_LE(r.param_count, mem->ParamCount());
  }
}

TEST(PipelineTest, AutoFisPipelineRuns) {
  const auto& p = SharedTinyData();
  HyperParams hp = TinyHp();
  hp.grda.c = 2e-3f;
  TrainOptions topts;
  topts.epochs = 2;
  topts.batch_size = hp.batch_size;
  topts.seed = hp.seed;
  AutoFisResult r = RunAutoFis(p.data, p.splits, hp, topts);
  EXPECT_EQ(CountArchitecture(r.arch).memorize, 0u);
  EXPECT_GT(r.retrain.final_test.auc, 0.5);
}

TEST(PipelineTest, TrainFixedArchMatchesModelParams) {
  const auto& p = SharedTinyData();
  HyperParams hp = TinyHp();
  Architecture arch = AllNaive(p.data.num_pairs());
  TrainOptions topts;
  topts.epochs = 1;
  topts.batch_size = 256;
  FixedArchRun run = TrainFixedArch(p.data, p.splits, arch, hp, topts);
  auto fnn = FixedArchModel::MakeFnn(p.data, hp);
  EXPECT_EQ(run.param_count, fnn->ParamCount());
}

}  // namespace
}  // namespace optinter
