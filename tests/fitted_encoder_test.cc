#include <gtest/gtest.h>

#include <fstream>
#include <numeric>

#include "data/encoder.h"
#include "data/fitted_encoder.h"
#include "synth/profiles.h"

namespace optinter {
namespace {

struct Fixture {
  RawDataset raw;
  std::vector<size_t> fit_rows;
  EncoderOptions opts;
};

Fixture MakeFixture() {
  Fixture f;
  SynthConfig cfg = TinyConfig();
  cfg.num_rows = 4000;
  f.raw = GenerateSynthetic(cfg);
  f.fit_rows.resize(2800);
  std::iota(f.fit_rows.begin(), f.fit_rows.end(), 0);
  f.opts.cat_min_count = 2;
  f.opts.cross_min_count = 2;
  return f;
}

TEST(FittedEncoderTest, MatchesOneShotEncoder) {
  // The stateful path must produce byte-identical encodings to the
  // one-shot EncodeDataset + BuildCrossFeatures path.
  Fixture f = MakeFixture();
  auto enc = FittedEncoder::Fit(f.raw, f.fit_rows, f.opts);
  ASSERT_TRUE(enc.ok()) << enc.status().ToString();
  auto transformed = enc->Transform(f.raw);
  ASSERT_TRUE(transformed.ok());

  auto oneshot = EncodeDataset(f.raw, f.fit_rows, f.opts);
  ASSERT_TRUE(oneshot.ok());
  EncodedDataset expected = std::move(oneshot).value();
  ASSERT_TRUE(BuildCrossFeatures(&expected, f.fit_rows, f.opts).ok());

  EXPECT_EQ(transformed->cat_ids, expected.cat_ids);
  EXPECT_EQ(transformed->cat_vocab_sizes, expected.cat_vocab_sizes);
  EXPECT_EQ(transformed->cont_values, expected.cont_values);
  EXPECT_EQ(transformed->cross_ids, expected.cross_ids);
  EXPECT_EQ(transformed->cross_vocab_sizes, expected.cross_vocab_sizes);
}

TEST(FittedEncoderTest, TransformsUnseenDataWithOov) {
  Fixture f = MakeFixture();
  auto enc = FittedEncoder::Fit(f.raw, f.fit_rows, f.opts);
  ASSERT_TRUE(enc.ok());
  // New "serving" rows drawn from a different seed: same schema, values
  // partially unseen.
  SynthConfig cfg = TinyConfig();
  cfg.num_rows = 500;
  cfg.seed += 1234;
  RawDataset serving = GenerateSynthetic(cfg);
  auto out = enc->Transform(serving);
  ASSERT_TRUE(out.ok()) << out.status().ToString();
  EXPECT_EQ(out->num_rows, 500u);
  for (size_t r = 0; r < out->num_rows; ++r) {
    for (size_t fld = 0; fld < out->num_categorical(); ++fld) {
      ASSERT_LT(static_cast<size_t>(out->cat(r, fld)),
                out->cat_vocab_sizes[fld]);
    }
  }
}

TEST(FittedEncoderTest, SchemaMismatchRejected) {
  Fixture f = MakeFixture();
  auto enc = FittedEncoder::Fit(f.raw, f.fit_rows, f.opts);
  ASSERT_TRUE(enc.ok());
  RawDataset wrong;
  wrong.schema = DatasetSchema({{"other", FieldType::kCategorical},
                                {"thing", FieldType::kCategorical}});
  wrong.num_rows = 1;
  wrong.cat_values = {0, 0};
  wrong.labels = {1.0f};
  EXPECT_FALSE(enc->Transform(wrong).ok());
}

TEST(FittedEncoderTest, WithoutCrossProducesNoCross) {
  Fixture f = MakeFixture();
  auto enc = FittedEncoder::Fit(f.raw, f.fit_rows, f.opts,
                                /*with_cross=*/false);
  ASSERT_TRUE(enc.ok());
  EXPECT_FALSE(enc->has_cross());
  auto out = enc->Transform(f.raw);
  ASSERT_TRUE(out.ok());
  EXPECT_FALSE(out->has_cross());
}

TEST(FittedEncoderTest, SaveLoadRoundTrip) {
  Fixture f = MakeFixture();
  auto enc = FittedEncoder::Fit(f.raw, f.fit_rows, f.opts);
  ASSERT_TRUE(enc.ok());
  const std::string path = ::testing::TempDir() + "/encoder.bin";
  ASSERT_TRUE(enc->Save(path).ok());
  auto loaded = FittedEncoder::Load(path);
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();

  auto a = enc->Transform(f.raw);
  auto b = loaded->Transform(f.raw);
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(a->cat_ids, b->cat_ids);
  EXPECT_EQ(a->cross_ids, b->cross_ids);
  EXPECT_EQ(a->cont_values, b->cont_values);
}

TEST(FittedEncoderTest, LoadRejectsGarbage) {
  const std::string path = ::testing::TempDir() + "/garbage_enc.bin";
  std::ofstream(path) << "nope";
  EXPECT_FALSE(FittedEncoder::Load(path).ok());
}

TEST(FittedEncoderTest, EmptyFitRowsRejected) {
  Fixture f = MakeFixture();
  EXPECT_FALSE(FittedEncoder::Fit(f.raw, {}, f.opts).ok());
}

TEST(VocabItemsTest, RoundTrip) {
  Vocab v;
  for (int64_t x : {100, 100, 100, 200, 200, 300}) v.Add(x);
  v.Finalize(2);
  Vocab rebuilt = Vocab::FromItems(v.Items());
  for (int64_t x : {100, 200, 300, 999}) {
    EXPECT_EQ(v.Encode(x), rebuilt.Encode(x));
  }
  EXPECT_EQ(v.size(), rebuilt.size());
}

}  // namespace
}  // namespace optinter
