#include <gtest/gtest.h>

#include <numeric>

#include "data/encoder.h"
#include "metrics/metrics.h"
#include "metrics/mutual_information.h"
#include "synth/generator.h"
#include "synth/profiles.h"

namespace optinter {
namespace {

std::vector<size_t> Iota(size_t n) {
  std::vector<size_t> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(HashGaussianTest, ApproximatelyStandardNormal) {
  double sum = 0.0, sq = 0.0;
  const int n = 50000;
  for (int i = 0; i < n; ++i) {
    const double g = synth_internal::HashGaussian(1, 2, i, 0, 0);
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  EXPECT_NEAR(mean, 0.0, 0.02);
  EXPECT_NEAR(sq / n - mean * mean, 1.0, 0.05);
}

TEST(HashGaussianTest, DeterministicAndKeyed) {
  const double a = synth_internal::HashGaussian(1, 2, 3, 4, 5);
  EXPECT_EQ(a, synth_internal::HashGaussian(1, 2, 3, 4, 5));
  EXPECT_NE(a, synth_internal::HashGaussian(1, 2, 3, 4, 6));
  EXPECT_NE(a, synth_internal::HashGaussian(2, 2, 3, 4, 5));
}

TEST(GeneratorTest, DeterministicInSeed) {
  SynthConfig cfg = TinyConfig();
  cfg.num_rows = 500;
  RawDataset a = GenerateSynthetic(cfg);
  RawDataset b = GenerateSynthetic(cfg);
  EXPECT_EQ(a.cat_values, b.cat_values);
  EXPECT_EQ(a.labels, b.labels);
}

TEST(GeneratorTest, SeedChangesData) {
  SynthConfig cfg = TinyConfig();
  cfg.num_rows = 500;
  RawDataset a = GenerateSynthetic(cfg);
  cfg.seed += 1;
  RawDataset b = GenerateSynthetic(cfg);
  EXPECT_NE(a.cat_values, b.cat_values);
}

TEST(GeneratorTest, ValuesWithinCardinality) {
  SynthConfig cfg = TinyConfig();
  cfg.num_rows = 2000;
  RawDataset raw = GenerateSynthetic(cfg);
  for (size_t r = 0; r < raw.num_rows; ++r) {
    for (size_t f = 0; f < cfg.num_categorical(); ++f) {
      EXPECT_GE(raw.cat(r, f), 0);
      EXPECT_LT(raw.cat(r, f),
                static_cast<int64_t>(cfg.cardinalities[f]));
    }
  }
}

TEST(GeneratorTest, PositiveRatioCalibrated) {
  for (double target : {0.1, 0.3, 0.5}) {
    SynthConfig cfg = TinyConfig();
    cfg.num_rows = 20000;
    cfg.target_pos_ratio = target;
    RawDataset raw = GenerateSynthetic(cfg);
    double pos = 0.0;
    for (float y : raw.labels) pos += y;
    EXPECT_NEAR(pos / raw.num_rows, target, 0.02) << "target=" << target;
  }
}

TEST(GeneratorTest, PlantedKindsVector) {
  SynthConfig cfg = TinyConfig();
  auto kinds = cfg.PlantedKinds();
  ASSERT_EQ(kinds.size(), cfg.num_pairs());
  size_t mem = 0, fac = 0, noise = 0;
  for (auto k : kinds) {
    if (k == PlantedKind::kMemorize) ++mem;
    if (k == PlantedKind::kFactorize) ++fac;
    if (k == PlantedKind::kNoise) ++noise;
  }
  EXPECT_EQ(mem, cfg.memorize_pairs.size());
  EXPECT_EQ(fac, cfg.factorize_pairs.size());
  EXPECT_EQ(noise, cfg.num_pairs() - mem - fac);
}

TEST(GeneratorTest, ZipfSkewsPopularity) {
  SynthConfig cfg = TinyConfig();
  cfg.num_rows = 10000;
  cfg.zipf_exponent = 1.2;
  RawDataset raw = GenerateSynthetic(cfg);
  // The most popular value of field 0 should dominate a uniform share.
  std::vector<size_t> counts(cfg.cardinalities[0], 0);
  for (size_t r = 0; r < raw.num_rows; ++r) ++counts[raw.cat(r, 0)];
  const size_t max_count = *std::max_element(counts.begin(), counts.end());
  EXPECT_GT(max_count, raw.num_rows / cfg.cardinalities[0] * 5);
}

TEST(GeneratorTest, PlantedMemorizePairsCarryJointInformation) {
  // The core property the whole reproduction rests on: memorize-planted
  // pairs carry *joint* information beyond their fields' marginals, and
  // noise pairs do not. Raw pair MI is confounded by unary effects, so
  // compare the interaction lift MI(pair) − MI(i) − MI(j).
  SynthConfig cfg = TinyConfig();
  cfg.num_rows = 30000;
  RawDataset raw = GenerateSynthetic(cfg);
  EncoderOptions opts;
  opts.cat_min_count = 1;
  auto enc = EncodeDataset(raw, Iota(raw.num_rows), opts);
  ASSERT_TRUE(enc.ok());
  const auto rows = Iota(raw.num_rows);
  auto mi = AllPairMutualInformation(*enc, rows);
  const auto pairs = EnumeratePairs(enc->num_categorical());
  std::vector<double> field_mi(enc->num_categorical());
  for (size_t f = 0; f < enc->num_categorical(); ++f) {
    field_mi[f] = FieldLabelMutualInformation(*enc, f, rows);
  }
  auto kinds = cfg.PlantedKinds();
  double mem_lift = 0.0, noise_lift = 0.0;
  size_t mem_n = 0, noise_n = 0;
  for (size_t p = 0; p < mi.size(); ++p) {
    const double lift = mi[p] - field_mi[pairs[p].first] -
                        field_mi[pairs[p].second];
    if (kinds[p] == PlantedKind::kMemorize) {
      mem_lift += lift;
      ++mem_n;
    } else if (kinds[p] == PlantedKind::kNoise) {
      noise_lift += lift;
      ++noise_n;
    }
  }
  ASSERT_GT(mem_n, 0u);
  ASSERT_GT(noise_n, 0u);
  EXPECT_GT(mem_lift / mem_n, noise_lift / noise_n + 0.01);
}

TEST(GeneratorTest, ContinuousFieldsPopulated) {
  SynthConfig cfg = TinyConfig();
  cfg.num_rows = 100;
  RawDataset raw = GenerateSynthetic(cfg);
  ASSERT_EQ(cfg.num_continuous, 1u);
  bool varied = false;
  for (size_t r = 1; r < raw.num_rows; ++r) {
    varied |= raw.cont(r, 0) != raw.cont(0, 0);
  }
  EXPECT_TRUE(varied);
}

// ---------------------------------------------------------------------------
// Profiles
// ---------------------------------------------------------------------------

TEST(ProfilesTest, AllPaperProfilesResolve) {
  for (const auto& name : PaperProfileNames()) {
    auto cfg = GetProfile(name);
    ASSERT_TRUE(cfg.ok()) << name;
    EXPECT_EQ(cfg->name, name);
    EXPECT_GE(cfg->num_categorical(), 2u);
    EXPECT_GT(cfg->num_rows, 0u);
    EXPECT_LE(cfg->memorize_pairs.size() + cfg->factorize_pairs.size(),
              cfg->num_pairs());
  }
}

TEST(ProfilesTest, UnknownProfileRejected) {
  EXPECT_FALSE(GetProfile("criteo_actual").ok());
}

TEST(ProfilesTest, TableIIShapePreserved) {
  // Relative shapes from Table II: Criteo has continuous fields, Avazu's
  // first field dwarfs the rest (Device_ID), iPinYou has the rarest
  // positives, private has 9 categorical fields / 36 pairs.
  auto criteo = CriteoLikeConfig();
  EXPECT_GT(criteo.num_continuous, 0u);
  EXPECT_NEAR(criteo.target_pos_ratio, 0.23, 1e-9);

  auto avazu = AvazuLikeConfig();
  EXPECT_GT(avazu.cardinalities[0], 3 * avazu.cardinalities[1]);

  auto ipinyou = IpinyouLikeConfig();
  auto priv = PrivateLikeConfig();
  EXPECT_LT(ipinyou.target_pos_ratio, avazu.target_pos_ratio);
  EXPECT_EQ(priv.num_categorical(), 9u);
  EXPECT_EQ(priv.num_pairs(), 36u);
}

TEST(ProfilesTest, PlantedPairsDisjoint) {
  for (const auto& name : PaperProfileNames()) {
    auto cfg = GetProfile(name);
    ASSERT_TRUE(cfg.ok());
    std::set<std::pair<size_t, size_t>> mem(cfg->memorize_pairs.begin(),
                                            cfg->memorize_pairs.end());
    for (const auto& p : cfg->factorize_pairs) {
      EXPECT_EQ(mem.count(p), 0u) << name;
    }
  }
}

TEST(ProfilesTest, ScaleRowsClampsAndScales) {
  SynthConfig cfg = TinyConfig();
  cfg.num_rows = 10000;
  ScaleRows(&cfg, 0.5);
  EXPECT_EQ(cfg.num_rows, 5000u);
  ScaleRows(&cfg, 1e-9);
  EXPECT_EQ(cfg.num_rows, 1000u);  // floor
}

}  // namespace
}  // namespace optinter
