#include "tensor/tensor.h"

#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "tensor/kernels.h"

namespace optinter {
namespace {

TEST(TensorTest, ZeroInitialized) {
  Tensor t({3, 4});
  EXPECT_EQ(t.size(), 12u);
  for (size_t i = 0; i < t.size(); ++i) EXPECT_EQ(t[i], 0.0f);
}

TEST(TensorTest, ShapeAccessors) {
  Tensor t({2, 5});
  EXPECT_EQ(t.rows(), 2u);
  EXPECT_EQ(t.cols(), 5u);
  EXPECT_EQ(t.ndim(), 2u);
  EXPECT_EQ(t.ShapeString(), "[2, 5]");
}

TEST(TensorTest, RowPointerArithmetic) {
  Tensor t({3, 2});
  t.at(1, 0) = 7.0f;
  t.at(1, 1) = 8.0f;
  EXPECT_EQ(t.row(1)[0], 7.0f);
  EXPECT_EQ(t.row(1)[1], 8.0f);
}

TEST(TensorTest, ReshapePreservesData) {
  Tensor t({2, 3});
  for (size_t i = 0; i < 6; ++i) t[i] = static_cast<float>(i);
  t.Reshape({3, 2});
  EXPECT_EQ(t.rows(), 3u);
  EXPECT_EQ(t.at(2, 1), 5.0f);
}

TEST(TensorTest, FillAndZero) {
  Tensor t({4});
  t.Fill(2.5f);
  EXPECT_EQ(t[3], 2.5f);
  t.Zero();
  EXPECT_EQ(t[0], 0.0f);
}

TEST(KernelsTest, GemmNNSmall) {
  // [1 2; 3 4] * [5 6; 7 8] = [19 22; 43 50]
  const float a[] = {1, 2, 3, 4};
  const float b[] = {5, 6, 7, 8};
  float c[4] = {};
  GemmNN(a, b, c, 2, 2, 2);
  EXPECT_FLOAT_EQ(c[0], 19.0f);
  EXPECT_FLOAT_EQ(c[1], 22.0f);
  EXPECT_FLOAT_EQ(c[2], 43.0f);
  EXPECT_FLOAT_EQ(c[3], 50.0f);
}

TEST(KernelsTest, GemmNTMatchesManual) {
  // A [2×3], B [2×3] (interpreted as [n×k] with n=2): C = A Bᵀ [2×2].
  const float a[] = {1, 2, 3, 4, 5, 6};
  const float b[] = {1, 0, 1, 0, 1, 0};
  float c[4] = {};
  GemmNT(a, b, c, 2, 3, 2);
  EXPECT_FLOAT_EQ(c[0], 4.0f);   // 1+3
  EXPECT_FLOAT_EQ(c[1], 2.0f);   // 2
  EXPECT_FLOAT_EQ(c[2], 10.0f);  // 4+6
  EXPECT_FLOAT_EQ(c[3], 5.0f);
}

TEST(KernelsTest, GemmTNMatchesManual) {
  // A [2×2], B [2×2]: C = Aᵀ B.
  const float a[] = {1, 2, 3, 4};
  const float b[] = {5, 6, 7, 8};
  float c[4] = {};
  GemmTN(a, b, c, 2, 2, 2);
  // Aᵀ = [1 3; 2 4]; C = [1*5+3*7, 1*6+3*8; 2*5+4*7, 2*6+4*8]
  EXPECT_FLOAT_EQ(c[0], 26.0f);
  EXPECT_FLOAT_EQ(c[1], 30.0f);
  EXPECT_FLOAT_EQ(c[2], 38.0f);
  EXPECT_FLOAT_EQ(c[3], 44.0f);
}

TEST(KernelsTest, GemmAccumulateBeta) {
  const float a[] = {1, 1};
  const float b[] = {2, 2};
  float c[1] = {10};
  GemmNN(a, b, c, 1, 2, 1, /*alpha=*/1.0f, /*beta=*/1.0f);
  EXPECT_FLOAT_EQ(c[0], 14.0f);
}

TEST(KernelsTest, LargeGemmConsistentWithSerial) {
  // Exceed the parallel threshold and compare against a serial reference.
  const size_t m = 64, k = 96, n = 512;
  std::vector<float> a(m * k), b(k * n), c(m * n), ref(m * n, 0.0f);
  for (size_t i = 0; i < a.size(); ++i) a[i] = static_cast<float>(i % 7) - 3;
  for (size_t i = 0; i < b.size(); ++i) b[i] = static_cast<float>(i % 5) - 2;
  for (size_t i = 0; i < m; ++i) {
    for (size_t p = 0; p < k; ++p) {
      for (size_t j = 0; j < n; ++j) {
        ref[i * n + j] += a[i * k + p] * b[p * n + j];
      }
    }
  }
  GemmNN(a.data(), b.data(), c.data(), m, k, n);
  for (size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], ref[i], 1e-3f) << "at " << i;
  }
}

TEST(KernelsTest, DotAndAxpy) {
  const float x[] = {1, 2, 3, 4, 5};
  float y[] = {1, 1, 1, 1, 1};
  EXPECT_FLOAT_EQ(Dot(5, x, y), 15.0f);
  Axpy(5, 2.0f, x, y);
  EXPECT_FLOAT_EQ(y[4], 11.0f);
}

TEST(KernelsTest, SoftmaxSumsToOne) {
  const float logits[] = {1.0f, 2.0f, 3.0f};
  float probs[3];
  Softmax(3, logits, probs);
  EXPECT_NEAR(probs[0] + probs[1] + probs[2], 1.0f, 1e-6f);
  EXPECT_GT(probs[2], probs[1]);
  EXPECT_GT(probs[1], probs[0]);
}

TEST(KernelsTest, SoftmaxStableForLargeLogits) {
  const float logits[] = {1000.0f, 1000.0f};
  float probs[2];
  Softmax(2, logits, probs);
  EXPECT_NEAR(probs[0], 0.5f, 1e-6f);
}

TEST(KernelsTest, SoftmaxEmptyInputDies) {
  // Softmax once silently returned on n == 0 while LogSumExp aborted on
  // the identical input; both now share the CHECK contract.
  float probs[1];
  EXPECT_DEATH(Softmax(0, nullptr, probs), "Check failed");
}

TEST(KernelsTest, LogSumExpEmptyInputDies) {
  EXPECT_DEATH(LogSumExp(0, nullptr), "Check failed");
}

TEST(KernelsTest, SoftmaxSingleElementIsOne) {
  const float logit = 3.5f;
  float prob = 0.0f;
  Softmax(1, &logit, &prob);
  EXPECT_FLOAT_EQ(prob, 1.0f);
  EXPECT_FLOAT_EQ(LogSumExp(1, &logit), 3.5f);
}

// Serial reference for GemmTN: C[k×n] = alpha·AᵀB + beta·C, plain triple
// loop with no blocking or unrolling.
void ReferenceGemmTN(const std::vector<float>& a, const std::vector<float>& b,
                     std::vector<float>* c, size_t m, size_t k, size_t n,
                     float alpha, float beta) {
  for (auto& v : *c) v *= beta;
  for (size_t i = 0; i < m; ++i) {
    for (size_t p = 0; p < k; ++p) {
      for (size_t j = 0; j < n; ++j) {
        (*c)[p * n + j] += alpha * a[i * k + p] * b[i * n + j];
      }
    }
  }
}

struct GemmTNShape {
  size_t m, k, n;
};

class GemmTNParallelTest : public ::testing::TestWithParam<GemmTNShape> {};

TEST_P(GemmTNParallelTest, MatchesSerialReference) {
  const auto [m, k, n] = GetParam();
  std::vector<float> a(m * k), b(m * n);
  for (size_t i = 0; i < a.size(); ++i) {
    a[i] = static_cast<float>((i * 37 + 11) % 13) / 13.0f - 0.5f;
  }
  for (size_t i = 0; i < b.size(); ++i) {
    b[i] = static_cast<float>((i * 29 + 5) % 17) / 17.0f - 0.5f;
  }
  // Non-trivial alpha/beta plus pre-filled C exercise the scale path.
  std::vector<float> c(k * n, 0.25f), ref(k * n, 0.25f);
  GemmTN(a.data(), b.data(), c.data(), m, k, n, 0.5f, 2.0f);
  ReferenceGemmTN(a, b, &ref, m, k, n, 0.5f, 2.0f);
  // Parallel chunks merge in nondeterministic order, so compare with a
  // tolerance scaled to the m-long accumulation.
  const float tol = 1e-5f * static_cast<float>(m);
  for (size_t i = 0; i < c.size(); ++i) {
    ASSERT_NEAR(c[i], ref[i], tol) << "at " << i;
  }
}

INSTANTIATE_TEST_SUITE_P(
    OddShapes, GemmTNParallelTest,
    ::testing::Values(GemmTNShape{1, 7, 5},      // single row
                      GemmTNShape{513, 1, 3},    // k = 1
                      GemmTNShape{1000, 3, 1},   // n = 1
                      GemmTNShape{517, 129, 33},  // nothing divides chunks
                      GemmTNShape{2048, 256, 64}  // above parallel cutoff
                      ),
    [](const auto& info) {
      return "m" + std::to_string(info.param.m) + "k" +
             std::to_string(info.param.k) + "n" +
             std::to_string(info.param.n);
    });

TEST(KernelsTest, SigmoidScalarStable) {
  EXPECT_NEAR(SigmoidScalar(0.0f), 0.5f, 1e-7f);
  EXPECT_NEAR(SigmoidScalar(100.0f), 1.0f, 1e-6f);
  EXPECT_NEAR(SigmoidScalar(-100.0f), 0.0f, 1e-6f);
}

TEST(KernelsTest, HadamardOps) {
  const float x[] = {1, 2, 3};
  const float y[] = {4, 5, 6};
  float out[3];
  Hadamard(3, x, y, out);
  EXPECT_FLOAT_EQ(out[1], 10.0f);
  HadamardAccum(3, x, y, out);
  EXPECT_FLOAT_EQ(out[1], 20.0f);
}

TEST(KernelsTest, LogSumExp) {
  const float x[] = {0.0f, 0.0f};
  EXPECT_NEAR(LogSumExp(2, x), std::log(2.0f), 1e-6f);
}

TEST(KernelsTest, MatMulShapeChecked) {
  Tensor a({2, 3});
  Tensor b({3, 4});
  Tensor c;
  a.Fill(1.0f);
  b.Fill(2.0f);
  MatMul(a, b, &c);
  EXPECT_EQ(c.rows(), 2u);
  EXPECT_EQ(c.cols(), 4u);
  EXPECT_FLOAT_EQ(c.at(1, 3), 6.0f);
}

}  // namespace
}  // namespace optinter
