// Torture tests for the out-of-core data layer: shard format round-trips,
// corrupt-shard detection (truncation, bit flips, garbage appends, swapped
// files, mangled manifests — each at randomized offsets), the streaming
// reader's residency bound and fail-clean batch contract, exact-mode
// stream-encode parity with the in-RAM encoder, and the hash-trick
// encoder's statistical guarantees.

#include <gtest/gtest.h>

#include <sys/stat.h>

#include <cmath>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <set>
#include <string>
#include <vector>

#include "common/rng.h"
#include "data/encoder.h"
#include "data/hash_encoder.h"
#include "data/shard_format.h"
#include "data/stream_encode.h"
#include "data/stream_reader.h"
#include "synth/generator.h"
#include "synth/profiles.h"
#include "test_data.h"

namespace optinter {
namespace {

using testing::SharedTinyData;

// Fresh empty directory under the test temp root.
std::string FreshDir(const std::string& name) {
  const std::string dir = ::testing::TempDir() + "/" + name;
  std::filesystem::remove_all(dir);
  std::filesystem::create_directories(dir);
  return dir;
}

// Writes the shared tiny dataset (with cross features) as shards.
std::string WriteTinyShards(const std::string& name,
                            size_t rows_per_shard = 512) {
  const std::string dir = FreshDir(name);
  const Status st =
      WriteShardedDataset(SharedTinyData().data, dir, rows_per_shard);
  CHECK_OK(st);
  return dir;
}

size_t FileSize(const std::string& path) {
  return static_cast<size_t>(std::filesystem::file_size(path));
}

void TruncateFile(const std::string& path, size_t new_size) {
  std::filesystem::resize_file(path, new_size);
}

void FlipBitAt(const std::string& path, size_t byte_offset, int bit) {
  std::fstream f(path, std::ios::in | std::ios::out | std::ios::binary);
  f.seekg(static_cast<std::streamoff>(byte_offset));
  char c = 0;
  f.read(&c, 1);
  c = static_cast<char>(c ^ (1 << bit));
  f.seekp(static_cast<std::streamoff>(byte_offset));
  f.write(&c, 1);
}

void AppendGarbage(const std::string& path, size_t n, Rng* rng) {
  std::ofstream f(path, std::ios::app | std::ios::binary);
  for (size_t i = 0; i < n; ++i) {
    const char c = static_cast<char>(rng->UniformInt(256));
    f.write(&c, 1);
  }
}

// A batch fill over `rows` must fail with a message containing
// `expect_substr`, and must leave the destination with zero rows — the
// fail-clean contract: a batch is never half-filled.
void ExpectFillFails(StreamingReader* reader, const std::vector<size_t>& rows,
                     const std::string& expect_substr) {
  EncodedDataset dst;
  const Status st = reader->FillBatch(rows.data(), rows.size(), &dst);
  ASSERT_FALSE(st.ok());
  EXPECT_NE(st.ToString().find(expect_substr), std::string::npos)
      << "message was: " << st.ToString();
  EXPECT_EQ(dst.num_rows, 0u);
  EXPECT_TRUE(dst.cat_ids.empty());
  EXPECT_TRUE(dst.labels.empty());
}

// ---------------------------------------------------------------------------
// Round trips
// ---------------------------------------------------------------------------

TEST(ShardFormatTest, MaterializeRoundTripsBitExactly) {
  const EncodedDataset& src = SharedTinyData().data;
  const std::string dir = WriteTinyShards("shard_roundtrip");
  auto reader = StreamingReader::Open(dir);
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  auto copy = (*reader)->Materialize();
  ASSERT_TRUE(copy.ok()) << copy.status().ToString();

  EXPECT_EQ(copy->num_rows, src.num_rows);
  EXPECT_EQ(copy->cat_ids, src.cat_ids);
  EXPECT_EQ(copy->cross_ids, src.cross_ids);
  EXPECT_EQ(copy->triple_ids, src.triple_ids);
  EXPECT_EQ(copy->cont_values, src.cont_values);
  EXPECT_EQ(copy->labels, src.labels);
  EXPECT_EQ(copy->cat_vocab_sizes, src.cat_vocab_sizes);
  EXPECT_EQ(copy->cross_vocab_sizes, src.cross_vocab_sizes);
}

TEST(ShardFormatTest, FillBatchCopiesArbitraryRows) {
  const EncodedDataset& src = SharedTinyData().data;
  const std::string dir = WriteTinyShards("shard_fillbatch");
  auto reader = StreamingReader::Open(dir);
  ASSERT_TRUE(reader.ok());

  // Rows scattered across shards, out of order, with repeats.
  const std::vector<size_t> rows = {5, 1000, 3, src.num_rows - 1, 513, 5};
  EncodedDataset dst;
  ASSERT_TRUE((*reader)->FillBatch(rows.data(), rows.size(), &dst).ok());
  ASSERT_EQ(dst.num_rows, rows.size());
  EXPECT_EQ(dst.cat_vocab_sizes, src.cat_vocab_sizes);
  for (size_t k = 0; k < rows.size(); ++k) {
    const size_t r = rows[k];
    for (size_t f = 0; f < src.num_categorical(); ++f) {
      EXPECT_EQ(dst.cat(k, f), src.cat(r, f));
    }
    for (size_t p = 0; p < src.num_pairs(); ++p) {
      EXPECT_EQ(dst.cross(k, p), src.cross(r, p));
    }
    for (size_t c = 0; c < src.num_continuous(); ++c) {
      EXPECT_EQ(dst.cont(k, c), src.cont(r, c));
    }
    EXPECT_EQ(dst.label(k), src.label(r));
  }
}

TEST(ShardFormatTest, MetaDatasetCarriesSchemaAndVocabs) {
  const EncodedDataset& src = SharedTinyData().data;
  const std::string dir = WriteTinyShards("shard_meta");
  auto reader = StreamingReader::Open(dir);
  ASSERT_TRUE(reader.ok());
  const EncodedDataset& meta = (*reader)->meta();
  EXPECT_EQ(meta.num_rows, src.num_rows);
  EXPECT_EQ(meta.cat_vocab_sizes, src.cat_vocab_sizes);
  EXPECT_EQ(meta.cross_vocab_sizes, src.cross_vocab_sizes);
  EXPECT_EQ(meta.num_categorical(), src.num_categorical());
  EXPECT_TRUE(meta.cat_ids.empty());  // metadata only, no payload
}

TEST(ShardFormatTest, OutOfRangeRowRejected) {
  const std::string dir = WriteTinyShards("shard_oob");
  auto reader = StreamingReader::Open(dir);
  ASSERT_TRUE(reader.ok());
  ExpectFillFails(reader->get(), {(*reader)->num_rows()}, "outside dataset");
}

// ---------------------------------------------------------------------------
// Corruption torture: every mutation at randomized offsets must surface a
// clean, actionable error and never a partial batch.
// ---------------------------------------------------------------------------

TEST(ShardTortureTest, TruncationAtRandomOffsetsDetected) {
  Rng rng(101);
  for (int trial = 0; trial < 4; ++trial) {
    const std::string dir = WriteTinyShards("torture_trunc");
    const size_t shard = 1 + rng.UniformInt(3);
    const std::string path = ShardPath(dir, shard);
    const size_t size = FileSize(path);
    TruncateFile(path, rng.UniformInt(size));

    auto reader = StreamingReader::Open(dir);
    ASSERT_TRUE(reader.ok());  // manifest is intact; shards validate lazily
    const std::vector<size_t> rows = {shard * 512 + rng.UniformInt(512)};
    ExpectFillFails(reader->get(), rows, "truncated");
  }
}

TEST(ShardTortureTest, PayloadBitFlipsFailCrc) {
  Rng rng(202);
  for (int trial = 0; trial < 4; ++trial) {
    const std::string dir = WriteTinyShards("torture_flip");
    const size_t shard = rng.UniformInt(4);
    const std::string path = ShardPath(dir, shard);
    const size_t payload_bytes = FileSize(path) - kShardHeaderBytes;
    FlipBitAt(path, kShardHeaderBytes + rng.UniformInt(payload_bytes),
              static_cast<int>(rng.UniformInt(8)));

    auto reader = StreamingReader::Open(dir);
    ASSERT_TRUE(reader.ok());
    const std::vector<size_t> rows = {shard * 512 + rng.UniformInt(512)};
    ExpectFillFails(reader->get(), rows, "CRC");
  }
}

TEST(ShardTortureTest, GarbageAppendDetected) {
  Rng rng(303);
  const std::string dir = WriteTinyShards("torture_append");
  AppendGarbage(ShardPath(dir, 2), 1 + rng.UniformInt(4096), &rng);
  auto reader = StreamingReader::Open(dir);
  ASSERT_TRUE(reader.ok());
  ExpectFillFails(reader->get(), {2 * 512 + 7}, "garbage appended");
}

TEST(ShardTortureTest, CorruptHeaderMagicDetected) {
  Rng rng(404);
  const std::string dir = WriteTinyShards("torture_magic");
  FlipBitAt(ShardPath(dir, 0), rng.UniformInt(8),
            static_cast<int>(rng.UniformInt(8)));
  auto reader = StreamingReader::Open(dir);
  ASSERT_TRUE(reader.ok());
  ExpectFillFails(reader->get(), {3}, "not a shard file");
}

TEST(ShardTortureTest, SwappedShardFileDetected) {
  const std::string dir = WriteTinyShards("torture_swap");
  // shard_00000 replaced by a copy of shard_00001: valid file, valid
  // schema, wrong position.
  std::filesystem::copy_file(ShardPath(dir, 1), ShardPath(dir, 0),
                             std::filesystem::copy_options::overwrite_existing);
  auto reader = StreamingReader::Open(dir);
  ASSERT_TRUE(reader.ok());
  ExpectFillFails(reader->get(), {3}, "shard index");
}

TEST(ShardTortureTest, ForeignDatasetShardDetected) {
  // A shard from a dataset with identical layout (same row width, so the
  // size check passes) but different vocabulary metadata dropped into
  // this directory must fail the schema-hash check.
  const std::string dir = WriteTinyShards("torture_foreign");
  const std::string other_dir = FreshDir("torture_foreign_other");
  EncodedDataset foreign = SharedTinyData().data;
  foreign.cat_vocab_sizes[0] += 1;
  CHECK_OK(WriteShardedDataset(foreign, other_dir, 512));
  std::filesystem::copy_file(ShardPath(other_dir, 1), ShardPath(dir, 1),
                             std::filesystem::copy_options::overwrite_existing);
  auto reader = StreamingReader::Open(dir);
  ASSERT_TRUE(reader.ok());
  ExpectFillFails(reader->get(), {512 + 9}, "schema");
}

TEST(ShardTortureTest, ManifestBitFlipRejectedUpFront) {
  Rng rng(505);
  for (int trial = 0; trial < 4; ++trial) {
    const std::string dir = WriteTinyShards("torture_manifest");
    const std::string path = ManifestPath(dir);
    FlipBitAt(path, rng.UniformInt(FileSize(path)),
              static_cast<int>(rng.UniformInt(8)));
    // Any manifest mutation must be caught by Open (CRC or field checks).
    auto reader = StreamingReader::Open(dir);
    EXPECT_FALSE(reader.ok());
  }
}

TEST(ShardTortureTest, MissingShardFileFailsCleanly) {
  const std::string dir = WriteTinyShards("torture_missing");
  std::filesystem::remove(ShardPath(dir, 3));
  auto reader = StreamingReader::Open(dir);
  ASSERT_TRUE(reader.ok());
  ExpectFillFails(reader->get(), {3 * 512}, "shard_00003.bin");
}

TEST(ShardTortureTest, BatcherSurfacesMidEpochCorruptionWithoutPartialData) {
  // Corrupt a late shard; a sequential epoch must deliver only full,
  // valid batches before failing, then stick in the failed state.
  const std::string dir = WriteTinyShards("torture_midepoch");
  const size_t num_rows = SharedTinyData().data.num_rows;
  const size_t last_shard = (num_rows - 1) / 512;
  Rng rng(606);
  FlipBitAt(ShardPath(dir, last_shard),
            kShardHeaderBytes + rng.UniformInt(64), 3);

  auto reader = StreamingReader::Open(dir);
  ASSERT_TRUE(reader.ok());
  StreamingBatcher::Options bo;
  bo.batch_size = 100;
  bo.order = StreamingBatcher::Order::kSequential;
  StreamingBatcher batcher(reader->get(), 0, num_rows, bo);
  batcher.StartEpoch();
  size_t rows_delivered = 0;
  for (;;) {
    Batch b = batcher.Next();
    if (b.size == 0) break;
    // Every delivered batch is fully valid: its rows precede the corrupt
    // shard (full batches only, never a partial fill).
    EXPECT_EQ(b.size, 100u);
    rows_delivered += b.size;
  }
  EXPECT_FALSE(batcher.status().ok());
  EXPECT_LT(rows_delivered, num_rows);
  // Sticky: restarting the epoch does not clear the failure.
  batcher.StartEpoch();
  EXPECT_EQ(batcher.Next().size, 0u);
  EXPECT_FALSE(batcher.status().ok());
}

// ---------------------------------------------------------------------------
// Residency bound
// ---------------------------------------------------------------------------

TEST(StreamingReaderTest, LruEvictionHoldsResidencyBound) {
  const std::string dir = WriteTinyShards("residency");
  StreamingReader::Options opts;
  opts.max_resident_shards = 2;
  auto reader = StreamingReader::Open(dir, opts);
  ASSERT_TRUE(reader.ok());
  const size_t num_rows = (*reader)->num_rows();
  EncodedDataset dst;
  // One-row batches marching through every shard, twice (second pass
  // re-maps evicted shards).
  for (int pass = 0; pass < 2; ++pass) {
    for (size_t r = 0; r < num_rows; r += 512) {
      ASSERT_TRUE((*reader)->FillBatch(&r, 1, &dst).ok());
      EXPECT_LE((*reader)->resident_shards(), 2u);
    }
  }
}

// ---------------------------------------------------------------------------
// Stream encode: exact mode must reproduce the in-RAM encoder bit-for-bit
// ---------------------------------------------------------------------------

TEST(StreamEncodeTest, ExactModeMatchesInRamEncoderBitwise) {
  SynthConfig cfg = TinyConfig();
  cfg.num_rows = 3000;
  const RawDataset raw = GenerateSynthetic(cfg);

  const std::string dir = FreshDir("streamenc_exact");
  StreamEncodeOptions opts;
  opts.fit_fraction = 0.7;
  opts.build_cross = true;
  opts.rows_per_shard = 700;
  opts.encoder.cat_min_count = 2;
  opts.encoder.cross_min_count = 2;
  MaterializedRowSource source(&raw);
  auto stats = StreamEncodeToShards(&source, dir, opts);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();
  EXPECT_EQ(stats->rows, raw.num_rows);

  // In-RAM reference: fit on the same prefix rows.
  std::vector<size_t> fit_rows(stats->fit_rows);
  std::iota(fit_rows.begin(), fit_rows.end(), 0);
  auto reference = EncodeDataset(raw, fit_rows, opts.encoder);
  ASSERT_TRUE(reference.ok());
  CHECK_OK(BuildCrossFeatures(&*reference, fit_rows, opts.encoder));

  auto reader = StreamingReader::Open(dir);
  ASSERT_TRUE(reader.ok());
  auto streamed = (*reader)->Materialize();
  ASSERT_TRUE(streamed.ok());

  EXPECT_EQ(streamed->cat_ids, reference->cat_ids);
  EXPECT_EQ(streamed->cat_vocab_sizes, reference->cat_vocab_sizes);
  EXPECT_EQ(streamed->cross_ids, reference->cross_ids);
  EXPECT_EQ(streamed->cross_vocab_sizes, reference->cross_vocab_sizes);
  EXPECT_EQ(streamed->cont_values, reference->cont_values);
  EXPECT_EQ(streamed->labels, reference->labels);
}

// ---------------------------------------------------------------------------
// Hash-trick encoder
// ---------------------------------------------------------------------------

// The hash is persisted in encoded datasets, so its values are pinned
// forever: any change to ShardStableHash64 silently re-buckets every
// hashed dataset on disk.
TEST(HashEncoderTest, GoldenHashValuesPinned) {
  EXPECT_EQ(ShardStableHash64(0, 0), 0xe220a8397b1dcdafULL);
  EXPECT_EQ(ShardStableHash64(1, 0), 0x910a2dec89025cc1ULL);
  EXPECT_EQ(ShardStableHash64(42, 7), 0xcbbd05c7de73a889ULL);
  EXPECT_EQ(ShardStableHash64(0xdeadbeefULL, 123), 0x0190345d136600baULL);
}

TEST(HashEncoderTest, HotValuesGetCollisionFreeIds) {
  HashEncoderOptions opts;
  opts.hot_values = 8;
  opts.num_buckets = 16;
  HashedVocab vocab(opts);
  // Heavy values 0..7, plus a long singleton tail.
  for (uint64_t v = 0; v < 8; ++v) {
    for (int i = 0; i < 100; ++i) vocab.Observe(v);
  }
  for (uint64_t v = 1000; v < 1200; ++v) vocab.Observe(v);
  vocab.Finalize();

  EXPECT_EQ(vocab.num_hot(), 8u);
  std::set<int32_t> hot_ids;
  for (uint64_t v = 0; v < 8; ++v) {
    EXPECT_TRUE(vocab.IsHot(v));
    const int32_t id = vocab.Encode(v);
    EXPECT_GE(id, 1);
    EXPECT_LE(id, 8);
    hot_ids.insert(id);
  }
  EXPECT_EQ(hot_ids.size(), 8u);  // pairwise distinct: no collisions
  // Tail values land strictly above the hot range.
  EXPECT_GT(vocab.Encode(1000), 8);
}

TEST(HashEncoderTest, EncodeIsDeterministicAndInRange) {
  HashEncoderOptions opts;
  opts.hot_values = 4;
  opts.num_buckets = 32;
  opts.salt = 99;
  HashedVocab vocab(opts);
  for (uint64_t v = 0; v < 4; ++v) {
    for (int i = 0; i < 10; ++i) vocab.Observe(v);
  }
  vocab.Finalize();
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.NextUint64();
    const int32_t id = vocab.Encode(v);
    EXPECT_EQ(id, vocab.Encode(v));
    EXPECT_GE(id, 1);
    EXPECT_LT(static_cast<size_t>(id), vocab.vocab_size());
  }
}

TEST(HashEncoderTest, CollisionRateMatchesAnalyticBound) {
  // V distinct values, one row each, into B shared buckets (no hot set).
  // Expected colliding rows = V - E[occupied] with
  // E[occupied] = B * (1 - (1 - 1/B)^V) — the balls-in-bins bound the
  // header documents. A sound hash should land near it.
  const size_t B = 512;
  const size_t V = 512;
  HashEncoderOptions opts;
  opts.hot_values = 0;
  opts.num_buckets = B;
  HashedVocab vocab(opts);
  vocab.Finalize();
  BucketCollisionTracker tracker(vocab);
  HashEncodeStats stats;
  Rng rng(12345);
  for (size_t i = 0; i < V; ++i) {
    const uint64_t v = rng.NextUint64();
    tracker.Record(vocab.Encode(v), v, &stats);
  }
  ASSERT_EQ(stats.hashed_rows, V);
  const double expected_occupied =
      static_cast<double>(B) *
      (1.0 - std::pow(1.0 - 1.0 / static_cast<double>(B),
                      static_cast<double>(V)));
  const double expected_collisions = static_cast<double>(V) - expected_occupied;
  EXPECT_GT(static_cast<double>(stats.collision_rows),
            0.6 * expected_collisions);
  EXPECT_LT(static_cast<double>(stats.collision_rows),
            1.4 * expected_collisions);
}

TEST(HashEncoderTest, RepeatedRowsOfOneValueNeverCountAsCollisions) {
  HashEncoderOptions opts;
  opts.hot_values = 0;
  opts.num_buckets = 8;
  HashedVocab vocab(opts);
  vocab.Finalize();
  BucketCollisionTracker tracker(vocab);
  HashEncodeStats stats;
  for (int i = 0; i < 100; ++i) {
    tracker.Record(vocab.Encode(77), 77, &stats);
  }
  EXPECT_EQ(stats.hashed_rows, 100u);
  EXPECT_EQ(stats.collision_rows, 0u);
}

TEST(StreamEncodeTest, HashedModeBoundsVocabsAndCountsEveryValue) {
  SynthConfig cfg = TinyConfig();
  cfg.num_rows = 2000;
  const RawDataset raw = GenerateSynthetic(cfg);
  const std::string dir = FreshDir("streamenc_hashed");
  StreamEncodeOptions opts;
  opts.hashed = true;
  opts.hash_hot_values = 16;
  opts.hash_buckets = 64;
  opts.rows_per_shard = 700;
  MaterializedRowSource source(&raw);
  auto stats = StreamEncodeToShards(&source, dir, opts);
  ASSERT_TRUE(stats.ok()) << stats.status().ToString();

  auto reader = StreamingReader::Open(dir);
  ASSERT_TRUE(reader.ok());
  const EncodedDataset& meta = (*reader)->meta();
  for (const size_t vs : meta.cat_vocab_sizes) {
    EXPECT_LE(vs, 1 + 16 + 64u);  // 1 OOV + hot + buckets, regardless of
                                  // the raw field's cardinality
  }
  // Every encoded categorical value was routed through the hot set or a
  // bucket, and both are accounted.
  EXPECT_EQ(stats->cat_hash.hot_rows + stats->cat_hash.hashed_rows,
            stats->rows * raw.schema.num_categorical());
}

}  // namespace
}  // namespace optinter
