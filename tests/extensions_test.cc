// Tests for the paper's teased extensions implemented here: alternative
// factorization functions and third-order (triple) interactions.

#include <gtest/gtest.h>

#include <numeric>

#include "core/fixed_arch_model.h"
#include "core/pipeline.h"
#include "data/encoder.h"
#include "gradient_check.h"
#include "metrics/mutual_information.h"
#include "synth/profiles.h"
#include "test_data.h"
#include "train/trainer.h"

namespace optinter {
namespace {

using testing::HeadBatch;
using testing::SharedTinyData;

// ---------------------------------------------------------------------------
// Factorization functions
// ---------------------------------------------------------------------------

TEST(FactorizeFnTest, NamesAndParsing) {
  FactorizeFn fn;
  EXPECT_TRUE(ParseFactorizeFn("hadamard", &fn));
  EXPECT_EQ(fn, FactorizeFn::kHadamard);
  EXPECT_TRUE(ParseFactorizeFn("inner", &fn));
  EXPECT_EQ(fn, FactorizeFn::kInnerProduct);
  EXPECT_TRUE(ParseFactorizeFn("sum", &fn));
  EXPECT_EQ(fn, FactorizeFn::kPointwiseSum);
  EXPECT_FALSE(ParseFactorizeFn("outer", &fn));
  EXPECT_STREQ(FactorizeFnName(FactorizeFn::kHadamard), "hadamard");
}

TEST(FactorizeFnTest, Widths) {
  EXPECT_EQ(FactorizedWidth(FactorizeFn::kHadamard, 8), 8u);
  EXPECT_EQ(FactorizedWidth(FactorizeFn::kInnerProduct, 8), 1u);
  EXPECT_EQ(FactorizedWidth(FactorizeFn::kPointwiseSum, 8), 8u);
}

TEST(FactorizeFnTest, ForwardValues) {
  const float ei[] = {1, 2, 3};
  const float ej[] = {4, 5, 6};
  float out[3];
  FactorizedForward(FactorizeFn::kHadamard, 3, ei, ej, out);
  EXPECT_FLOAT_EQ(out[1], 10.0f);
  FactorizedForward(FactorizeFn::kInnerProduct, 3, ei, ej, out);
  EXPECT_FLOAT_EQ(out[0], 32.0f);
  FactorizedForward(FactorizeFn::kPointwiseSum, 3, ei, ej, out);
  EXPECT_FLOAT_EQ(out[2], 9.0f);
}

class FactorizeFnGradTest : public ::testing::TestWithParam<FactorizeFn> {};

TEST_P(FactorizeFnGradTest, BackwardMatchesFiniteDifference) {
  const FactorizeFn fn = GetParam();
  const size_t d = 5;
  Rng rng(3);
  std::vector<float> ei(d), ej(d), c(FactorizedWidth(fn, d));
  for (auto& v : ei) v = static_cast<float>(rng.Uniform(-1, 1));
  for (auto& v : ej) v = static_cast<float>(rng.Uniform(-1, 1));
  for (auto& v : c) v = static_cast<float>(rng.Uniform(-1, 1));
  auto loss = [&]() {
    std::vector<float> out(c.size());
    FactorizedForward(fn, d, ei.data(), ej.data(), out.data());
    double s = 0.0;
    for (size_t t = 0; t < c.size(); ++t) s += out[t] * c[t];
    return s;
  };
  std::vector<float> dei(d, 0.0f), dej(d, 0.0f);
  FactorizedBackward(fn, d, ei.data(), ej.data(), c.data(), 1.0f,
                     dei.data(), dej.data());
  testing::CheckGradient(ei.data(), d, dei.data(), loss);
  testing::CheckGradient(ej.data(), d, dej.data(), loss);
}

INSTANTIATE_TEST_SUITE_P(AllFns, FactorizeFnGradTest,
                         ::testing::Values(FactorizeFn::kHadamard,
                                           FactorizeFn::kInnerProduct,
                                           FactorizeFn::kPointwiseSum),
                         [](const auto& info) {
                           return FactorizeFnName(info.param);
                         });

class FactorizeFnModelTest : public ::testing::TestWithParam<FactorizeFn> {};

TEST_P(FactorizeFnModelTest, FixedArchTrainsWithEachFn) {
  const auto& p = SharedTinyData();
  HyperParams hp = DefaultHyperParams("tiny");
  hp.seed = 5;
  hp.factorize_fn = GetParam();
  auto model = FixedArchModel::MakeOptInterF(p.data, hp);
  Batch b = HeadBatch(p, 256);
  float first = 0.0f, last = 0.0f;
  for (int i = 0; i < 30; ++i) {
    const float loss = model->TrainStep(b);
    ASSERT_TRUE(std::isfinite(loss));
    if (i == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first);
}

TEST_P(FactorizeFnModelTest, SearchModelRunsWithEachFn) {
  const auto& p = SharedTinyData();
  HyperParams hp = DefaultHyperParams("tiny");
  hp.seed = 5;
  hp.factorize_fn = GetParam();
  SearchModel model(p.data, hp);
  Batch b = HeadBatch(p, 128);
  for (int i = 0; i < 5; ++i) {
    ASSERT_TRUE(std::isfinite(model.TrainStep(b)));
  }
  Architecture arch = model.ExtractArchitecture();
  EXPECT_EQ(arch.size(), p.data.num_pairs());
}

INSTANTIATE_TEST_SUITE_P(AllFns, FactorizeFnModelTest,
                         ::testing::Values(FactorizeFn::kHadamard,
                                           FactorizeFn::kInnerProduct,
                                           FactorizeFn::kPointwiseSum),
                         [](const auto& info) {
                           return FactorizeFnName(info.param);
                         });

TEST(FactorizeFnTest, InnerProductShrinksModel) {
  const auto& p = SharedTinyData();
  HyperParams hadamard = DefaultHyperParams("tiny");
  HyperParams inner = hadamard;
  inner.factorize_fn = FactorizeFn::kInnerProduct;
  auto big = FixedArchModel::MakeOptInterF(p.data, hadamard);
  auto small = FixedArchModel::MakeOptInterF(p.data, inner);
  EXPECT_LT(small->ParamCount(), big->ParamCount());
}

// ---------------------------------------------------------------------------
// Third-order interactions
// ---------------------------------------------------------------------------

TEST(TripleTest, EnumerateTriplesCountAndOrder) {
  auto triples = EnumerateTriples(5);
  EXPECT_EQ(triples.size(), 10u);  // C(5,3)
  EXPECT_EQ(triples.front(), (std::array<size_t, 3>{0, 1, 2}));
  EXPECT_EQ(triples.back(), (std::array<size_t, 3>{2, 3, 4}));
}

struct TripleFixture {
  SynthConfig cfg;
  EncodedDataset data;
  Splits splits;
};

const TripleFixture& SharedTripleData() {
  static const TripleFixture* fx = [] {
    auto* f = new TripleFixture();
    f->cfg = TinyConfig();
    f->cfg.num_rows = 8000;
    f->cfg.memorize_triples = {{0, 1, 2}};
    f->cfg.triple_scale = 1.5;
    RawDataset raw = GenerateSynthetic(f->cfg);
    Rng rng(9);
    f->splits = MakeSplits(raw.num_rows, 0.7, 0.1, &rng);
    EncoderOptions opts;
    opts.cat_min_count = 2;
    opts.cross_min_count = 2;
    auto enc = EncodeDataset(raw, f->splits.train, opts);
    CHECK(enc.ok());
    f->data = std::move(enc).value();
    CHECK_OK(BuildCrossFeatures(&f->data, f->splits.train, opts));
    CHECK_OK(BuildTripleCrossFeatures(
        &f->data, f->splits.train, opts,
        EnumerateTriples(f->data.num_categorical())));
    return f;
  }();
  return *fx;
}

TEST(TripleTest, BuildPopulatesIdsAndVocabs) {
  const auto& f = SharedTripleData();
  EXPECT_TRUE(f.data.has_triples());
  EXPECT_EQ(f.data.num_triples(),
            EnumerateTriples(f.data.num_categorical()).size());
  for (size_t t = 0; t < f.data.num_triples(); ++t) {
    EXPECT_GE(f.data.triple_vocab_sizes[t], 1u);
    for (size_t r = 0; r < 100; ++r) {
      EXPECT_GE(f.data.triple(r, t), 0);
      EXPECT_LT(static_cast<size_t>(f.data.triple(r, t)),
                f.data.triple_vocab_sizes[t]);
    }
  }
}

TEST(TripleTest, DoubleBuildRejected) {
  auto f = SharedTripleData();  // copy
  EXPECT_FALSE(BuildTripleCrossFeatures(&f.data, f.splits.train,
                                        EncoderOptions{}, {{0, 1, 2}})
                   .ok());
}

TEST(TripleTest, BadTripleOrderRejected) {
  const auto& p = SharedTinyData();
  EncodedDataset copy = p.data;
  copy.triple_ids.clear();
  copy.triple_fields.clear();
  EXPECT_FALSE(BuildTripleCrossFeatures(&copy, p.splits.train,
                                        EncoderOptions{}, {{2, 1, 0}})
                   .ok());
}

TEST(TripleTest, PlantedTripleHasTopMiLift) {
  const auto& f = SharedTripleData();
  auto top = SelectTopTriplesByMiLift(f.data, f.splits.train, 3);
  ASSERT_FALSE(top.empty());
  bool found = false;
  for (size_t idx : top) {
    found |= f.data.triple_fields[idx] ==
             (std::array<size_t, 3>{0, 1, 2});
  }
  EXPECT_TRUE(found) << "planted triple not in top-3 by MI lift";
}

TEST(TripleTest, TripleMiExceedsUnplantedTriples) {
  const auto& f = SharedTripleData();
  const auto triples = EnumerateTriples(f.data.num_categorical());
  double planted_mi = 0.0;
  double other_sum = 0.0;
  size_t other_n = 0;
  for (size_t t = 0; t < triples.size(); ++t) {
    const double mi =
        TripleLabelMutualInformation(f.data, t, f.splits.train);
    if (triples[t] == (std::array<size_t, 3>{0, 1, 2})) {
      planted_mi = mi;
    } else {
      other_sum += mi;
      ++other_n;
    }
  }
  EXPECT_GT(planted_mi, other_sum / other_n);
}

TEST(TripleTest, ThirdOrderModelTrainsAndCounts) {
  const auto& f = SharedTripleData();
  HyperParams hp = DefaultHyperParams("tiny");
  hp.seed = 13;
  Architecture arch = AllNaive(f.data.num_pairs());
  FixedArchModel base(f.data, arch, hp, "2nd");
  FixedArchModel extended(f.data, arch, hp, "3rd", {0, 1});
  EXPECT_GT(extended.ParamCount(), base.ParamCount());

  Batch b;
  b.data = &f.data;
  b.rows = f.splits.train.data();
  b.size = 256;
  float first = 0.0f, last = 0.0f;
  for (int i = 0; i < 30; ++i) {
    const float loss = extended.TrainStep(b);
    ASSERT_TRUE(std::isfinite(loss));
    if (i == 0) first = loss;
    last = loss;
  }
  EXPECT_LT(last, first);
}

TEST(TripleTest, MemorizingPlantedTripleBeatsIgnoringIt) {
  const auto& f = SharedTripleData();
  HyperParams hp = DefaultHyperParams("tiny");
  hp.seed = 13;
  hp.epochs = 3;
  TrainOptions topts;
  topts.epochs = hp.epochs;
  topts.batch_size = hp.batch_size;
  topts.seed = hp.seed;
  topts.patience = 0;
  // Both models memorize all pairs; one additionally memorizes the
  // planted triple.
  Architecture arch = AllMemorize(f.data.num_pairs());
  size_t planted_idx = SIZE_MAX;
  const auto triples = EnumerateTriples(f.data.num_categorical());
  for (size_t t = 0; t < triples.size(); ++t) {
    if (triples[t] == (std::array<size_t, 3>{0, 1, 2})) planted_idx = t;
  }
  ASSERT_NE(planted_idx, SIZE_MAX);

  FixedArchModel base(f.data, arch, hp, "2nd");
  TrainSummary s2 = TrainModel(&base, f.data, f.splits, topts);
  FixedArchModel extended(f.data, arch, hp, "3rd", {planted_idx});
  TrainSummary s3 = TrainModel(&extended, f.data, f.splits, topts);
  EXPECT_GT(s3.final_test.auc, s2.final_test.auc - 0.005)
      << "third-order memory should not hurt";
}

TEST(TripleTest, GeneratorTripleEffectIsDeterministic) {
  SynthConfig cfg = TinyConfig();
  cfg.memorize_triples = {{0, 1, 2}};
  cfg.num_rows = 300;
  RawDataset a = GenerateSynthetic(cfg);
  RawDataset b = GenerateSynthetic(cfg);
  EXPECT_EQ(a.labels, b.labels);
  // Removing the planted triple changes labels.
  cfg.memorize_triples.clear();
  RawDataset c = GenerateSynthetic(cfg);
  EXPECT_NE(a.labels, c.labels);
}

}  // namespace
}  // namespace optinter
