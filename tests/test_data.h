// Shared test fixtures: a small planted synthetic dataset, encoded with
// cross features, built once per test binary.

#pragma once

#include <memory>
#include <numeric>

#include "data/batch.h"
#include "data/encoder.h"
#include "synth/profiles.h"

namespace optinter {
namespace testing {

struct PreparedData {
  SynthConfig cfg;
  EncodedDataset data;
  Splits splits;
};

/// Builds (once) a ~6k-row tiny dataset with planted structure, encoded
/// with cross-product features and 70/10/20 splits.
inline const PreparedData& SharedTinyData() {
  static const PreparedData* prepared = [] {
    auto* p = new PreparedData();
    p->cfg = TinyConfig();
    RawDataset raw = GenerateSynthetic(p->cfg);
    Rng rng(p->cfg.seed);
    p->splits = MakeSplits(raw.num_rows, 0.7, 0.1, &rng);
    EncoderOptions opts;
    opts.cat_min_count = 2;
    opts.cross_min_count = 2;
    auto encoded = EncodeDataset(raw, p->splits.train, opts);
    CHECK(encoded.ok()) << encoded.status().ToString();
    p->data = std::move(encoded).value();
    CHECK_OK(BuildCrossFeatures(&p->data, p->splits.train, opts));
    return p;
  }();
  return *prepared;
}

/// A batch over the first `n` training rows.
inline Batch HeadBatch(const PreparedData& p, size_t n) {
  Batch b;
  b.data = &p.data;
  b.rows = p.splits.train.data();
  b.size = std::min(n, p.splits.train.size());
  return b;
}

}  // namespace testing
}  // namespace optinter
