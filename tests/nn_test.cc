#include <gtest/gtest.h>

#include <cmath>

#include "common/rng.h"
#include "gradient_check.h"
#include "nn/embedding.h"
#include "nn/init.h"
#include "nn/layers.h"
#include "nn/mlp.h"
#include "nn/optimizer.h"

namespace optinter {
namespace {

using testing::CheckGradient;

// Fixed projection so a vector output reduces to a scalar loss with
// non-degenerate gradients.
double WeightedSum(const Tensor& y, const Tensor& c) {
  double s = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    s += static_cast<double>(y[i]) * c[i];
  }
  return s;
}

Tensor RandomTensor(std::vector<size_t> shape, Rng* rng, double scale = 1.0) {
  Tensor t(std::move(shape));
  for (size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->Uniform(-scale, scale));
  }
  return t;
}

// ---------------------------------------------------------------------------
// Initializers
// ---------------------------------------------------------------------------

TEST(InitTest, XavierBounds) {
  Rng rng(1);
  Tensor t({100, 50});
  XavierUniform(&t, 50, 100, &rng);
  const double bound = std::sqrt(6.0 / 150.0);
  float max_abs = 0.0f;
  for (size_t i = 0; i < t.size(); ++i) {
    max_abs = std::max(max_abs, std::fabs(t[i]));
  }
  EXPECT_LE(max_abs, bound + 1e-6);
  EXPECT_GT(max_abs, bound * 0.8);  // should come close to the bound
}

TEST(InitTest, NormalMoments) {
  Rng rng(2);
  Tensor t({20000});
  NormalInit(&t, 1.0, 0.5, &rng);
  double sum = 0.0, sq = 0.0;
  for (size_t i = 0; i < t.size(); ++i) {
    sum += t[i];
    sq += t[i] * t[i];
  }
  const double mean = sum / t.size();
  EXPECT_NEAR(mean, 1.0, 0.02);
  EXPECT_NEAR(sq / t.size() - mean * mean, 0.25, 0.02);
}

TEST(InitTest, ConstantFill) {
  Tensor t({5});
  ConstantInit(&t, 3.0f);
  for (size_t i = 0; i < 5; ++i) EXPECT_EQ(t[i], 3.0f);
}

// ---------------------------------------------------------------------------
// Layers: gradient checks
// ---------------------------------------------------------------------------

TEST(LinearTest, ForwardMatchesManual) {
  Rng rng(3);
  Linear lin("t", 2, 2, 1e-3f, 0.0f, &rng);
  lin.weight.value.at(0, 0) = 1.0f;
  lin.weight.value.at(0, 1) = 2.0f;
  lin.weight.value.at(1, 0) = -1.0f;
  lin.weight.value.at(1, 1) = 0.5f;
  lin.bias.value[0] = 0.1f;
  lin.bias.value[1] = -0.2f;
  Tensor x({1, 2});
  x.at(0, 0) = 3.0f;
  x.at(0, 1) = 4.0f;
  Tensor y;
  lin.Forward(x, &y);
  EXPECT_NEAR(y.at(0, 0), 3.0f + 8.0f + 0.1f, 1e-5f);
  EXPECT_NEAR(y.at(0, 1), -3.0f + 2.0f - 0.2f, 1e-5f);
}

TEST(LinearTest, GradientCheckWeightBiasInput) {
  Rng rng(4);
  Linear lin("t", 5, 3, 1e-3f, 0.0f, &rng);
  Tensor x = RandomTensor({4, 5}, &rng);
  Tensor c = RandomTensor({4, 3}, &rng);
  auto loss = [&]() {
    Tensor y;
    lin.Forward(x, &y);
    return WeightedSum(y, c);
  };
  Tensor y;
  lin.Forward(x, &y);
  Tensor dx;
  lin.Backward(c, &dx);
  CheckGradient(lin.weight.value.data(), lin.weight.value.size(),
                lin.weight.grad.data(), loss);
  CheckGradient(lin.bias.value.data(), lin.bias.value.size(),
                lin.bias.grad.data(), loss);
  CheckGradient(x.data(), x.size(), dx.data(), loss);
}

TEST(ReluTest, ForwardAndGradient) {
  Relu relu;
  Tensor x({1, 4});
  x[0] = -1.0f;
  x[1] = 2.0f;
  x[2] = 0.5f;
  x[3] = -0.1f;
  Tensor y;
  relu.Forward(x, &y);
  EXPECT_EQ(y[0], 0.0f);
  EXPECT_EQ(y[1], 2.0f);
  Tensor dy({1, 4});
  dy.Fill(1.0f);
  Tensor dx;
  relu.Backward(dy, &dx);
  EXPECT_EQ(dx[0], 0.0f);
  EXPECT_EQ(dx[1], 1.0f);
  EXPECT_EQ(dx[2], 1.0f);
  EXPECT_EQ(dx[3], 0.0f);
}

TEST(LayerNormTest, NormalizesRows) {
  LayerNorm ln("t", 8, 1e-3f, 0.0f);
  Rng rng(5);
  Tensor x = RandomTensor({3, 8}, &rng, 5.0);
  Tensor y;
  ln.Forward(x, &y);
  for (size_t r = 0; r < 3; ++r) {
    double mean = 0.0, var = 0.0;
    for (size_t j = 0; j < 8; ++j) mean += y.at(r, j);
    mean /= 8.0;
    for (size_t j = 0; j < 8; ++j) {
      var += (y.at(r, j) - mean) * (y.at(r, j) - mean);
    }
    var /= 8.0;
    EXPECT_NEAR(mean, 0.0, 1e-4);
    EXPECT_NEAR(var, 1.0, 1e-2);
  }
}

TEST(LayerNormTest, GradientCheck) {
  LayerNorm ln("t", 6, 1e-3f, 0.0f);
  Rng rng(6);
  // Non-trivial gamma/beta so their gradients are exercised.
  for (size_t i = 0; i < 6; ++i) {
    ln.gamma.value[i] = 0.5f + 0.1f * static_cast<float>(i);
    ln.beta.value[i] = 0.05f * static_cast<float>(i);
  }
  Tensor x = RandomTensor({3, 6}, &rng, 2.0);
  Tensor c = RandomTensor({3, 6}, &rng);
  auto loss = [&]() {
    Tensor y;
    ln.Forward(x, &y);
    return WeightedSum(y, c);
  };
  Tensor y;
  ln.Forward(x, &y);
  Tensor dx;
  ln.Backward(c, &dx);
  CheckGradient(ln.gamma.value.data(), 6, ln.gamma.grad.data(), loss);
  CheckGradient(ln.beta.value.data(), 6, ln.beta.grad.data(), loss);
  CheckGradient(x.data(), x.size(), dx.data(), loss, 1e-3, 4e-2);
}

TEST(BceTest, MatchesManualValues) {
  const float logits[] = {0.0f};
  const float labels[] = {1.0f};
  float dlogits[1];
  const float loss = BceWithLogitsLoss(logits, labels, 1, dlogits);
  EXPECT_NEAR(loss, std::log(2.0f), 1e-6f);
  EXPECT_NEAR(dlogits[0], -0.5f, 1e-6f);
}

TEST(BceTest, GradientMatchesFiniteDifference) {
  float logits[] = {0.3f, -1.2f, 2.0f, 0.0f};
  const float labels[] = {1.0f, 0.0f, 1.0f, 0.0f};
  float dlogits[4];
  BceWithLogitsLoss(logits, labels, 4, dlogits);
  auto loss = [&]() {
    float tmp[4];
    return static_cast<double>(BceWithLogitsLoss(logits, labels, 4, tmp));
  };
  CheckGradient(logits, 4, dlogits, loss, 1e-3, 1e-2);
}

TEST(BceTest, StableForExtremeLogits) {
  const float logits[] = {100.0f, -100.0f};
  const float labels[] = {1.0f, 0.0f};
  float dlogits[2];
  const float loss = BceWithLogitsLoss(logits, labels, 2, dlogits);
  EXPECT_LT(loss, 1e-6f);
  EXPECT_TRUE(std::isfinite(loss));
}

TEST(MlpTest, GradientCheckThroughStack) {
  Rng rng(7);
  MlpConfig cfg;
  cfg.hidden = {7, 5};
  cfg.out_dim = 2;
  cfg.layer_norm = true;
  Mlp mlp("t", 6, cfg, &rng);
  Tensor x = RandomTensor({3, 6}, &rng);
  Tensor c = RandomTensor({3, 2}, &rng);
  auto loss = [&]() {
    Tensor y;
    mlp.Forward(x, &y);
    return WeightedSum(y, c);
  };
  Tensor y;
  mlp.Forward(x, &y);
  Tensor dx;
  mlp.Backward(c, &dx);
  // Input gradient: ReLU kinks can break finite differences exactly at 0;
  // random init makes that measure-zero. Use looser tolerance.
  CheckGradient(x.data(), x.size(), dx.data(), loss, 1e-3, 5e-2);
}

TEST(MlpTest, NoHiddenIsPureLinear) {
  Rng rng(8);
  MlpConfig cfg;
  cfg.hidden = {};
  cfg.out_dim = 1;
  Mlp mlp("t", 4, cfg, &rng);
  Tensor x = RandomTensor({2, 4}, &rng);
  Tensor y;
  mlp.Forward(x, &y);
  EXPECT_EQ(y.rows(), 2u);
  EXPECT_EQ(y.cols(), 1u);
  // Backward with dx must be well-formed.
  Tensor dy({2, 1});
  dy.Fill(1.0f);
  Tensor dx;
  mlp.Backward(dy, &dx);
  EXPECT_EQ(dx.cols(), 4u);
}

TEST(MlpTest, ParamCountFormula) {
  Rng rng(9);
  MlpConfig cfg;
  cfg.hidden = {10, 5};
  cfg.out_dim = 1;
  cfg.layer_norm = true;
  Mlp mlp("t", 8, cfg, &rng);
  // linears: 8*10+10 + 10*5+5 + 5*1+1 = 90+55+6 = 151; LN: 2*(10+5) = 30.
  EXPECT_EQ(mlp.ParamCount(), 151u + 30u);
}

// ---------------------------------------------------------------------------
// Optimizers
// ---------------------------------------------------------------------------

TEST(SgdTest, ConvergesOnQuadratic) {
  DenseParam p;
  p.Resize({1});
  p.value[0] = 5.0f;
  p.lr = 0.1f;
  Sgd sgd;
  sgd.AddParam(&p);
  for (int i = 0; i < 200; ++i) {
    p.grad[0] = 2.0f * p.value[0];  // d/dw of w²
    sgd.Step();
    sgd.ZeroGrad();
  }
  EXPECT_NEAR(p.value[0], 0.0f, 1e-4f);
}

TEST(SgdTest, AppliesL2) {
  DenseParam p;
  p.Resize({1});
  p.value[0] = 1.0f;
  p.lr = 0.1f;
  p.l2 = 1.0f;
  Sgd sgd;
  sgd.AddParam(&p);
  sgd.Step();  // zero grad, only decay: w -= lr * l2 * w
  EXPECT_NEAR(p.value[0], 0.9f, 1e-6f);
}

TEST(AdamTest, FirstStepIsSignedLr) {
  // With bias correction, the first Adam step is ≈ lr * sign(grad).
  DenseParam p;
  p.Resize({2});
  p.value[0] = 1.0f;
  p.value[1] = 1.0f;
  p.lr = 0.01f;
  Adam adam;
  adam.AddParam(&p);
  p.grad[0] = 0.5f;
  p.grad[1] = -3.0f;
  adam.Step();
  EXPECT_NEAR(p.value[0], 1.0f - 0.01f, 1e-4f);
  EXPECT_NEAR(p.value[1], 1.0f + 0.01f, 1e-4f);
}

TEST(AdamTest, ConvergesOnQuadratic) {
  DenseParam p;
  p.Resize({1});
  p.value[0] = 3.0f;
  p.lr = 0.05f;
  Adam adam;
  adam.AddParam(&p);
  for (int i = 0; i < 2000; ++i) {
    p.grad[0] = 2.0f * p.value[0];
    adam.Step();
    adam.ZeroGrad();
  }
  EXPECT_NEAR(p.value[0], 0.0f, 1e-2f);
}

TEST(GrdaTest, PrunesNoiseKeepsSignal) {
  // Two gates: one receives consistent gradient pressure (useful), the
  // other none (useless). GRDA must zero the useless one and keep the
  // useful one alive.
  DenseParam p;
  p.Resize({2});
  p.value[0] = 0.5f;
  p.value[1] = 0.5f;
  p.lr = 0.1f;
  GrdaConfig cfg;
  cfg.c = 0.1f;
  cfg.mu = 0.8f;
  Grda grda(cfg);
  grda.AddParam(&p);
  for (int i = 0; i < 500; ++i) {
    p.grad[0] = -1.0f;  // keeps pushing gate 0 up
    p.grad[1] = 0.0f;
    grda.Step();
    grda.ZeroGrad();
  }
  EXPECT_GT(p.value[0], 1.0f);
  EXPECT_EQ(p.value[1], 0.0f);
}

TEST(GrdaTest, ThresholdGrowsOverTime) {
  // Even a nonzero initial weight decays to exactly zero without gradient
  // support once the accumulated threshold exceeds it.
  DenseParam p;
  p.Resize({1});
  p.value[0] = 0.2f;
  p.lr = 0.1f;
  GrdaConfig cfg;
  cfg.c = 0.1f;
  cfg.mu = 0.8f;
  Grda grda(cfg);
  grda.AddParam(&p);
  for (int i = 0; i < 2000 && p.value[0] != 0.0f; ++i) {
    grda.Step();
    grda.ZeroGrad();
  }
  EXPECT_EQ(p.value[0], 0.0f);
}

// ---------------------------------------------------------------------------
// EmbeddingTable
// ---------------------------------------------------------------------------

TEST(EmbeddingTest, RowAccessAndInit) {
  Rng rng(10);
  EmbeddingTable table("t", 10, 4, 1e-3f, 0.0f);
  table.Init(&rng, 0.1);
  const float* row = table.Row(3);
  bool any_nonzero = false;
  for (size_t i = 0; i < 4; ++i) any_nonzero |= row[i] != 0.0f;
  EXPECT_TRUE(any_nonzero);
  EXPECT_EQ(table.ParamCount(), 40u);
}

TEST(EmbeddingTest, AccumulateDedupsIds) {
  EmbeddingTable table("t", 10, 2, 1e-3f, 0.0f);
  const float g[] = {1.0f, 2.0f};
  table.AccumulateGrad(5, g);
  table.AccumulateGrad(5, g);
  table.AccumulateGrad(7, g);
  EXPECT_EQ(table.touched_count(), 2u);
}

TEST(EmbeddingTest, SparseSgdUpdatesOnlyTouchedRows) {
  Rng rng(11);
  EmbeddingTable table("t", 10, 2, 0.1f, 0.0f);
  table.Init(&rng, 0.1);
  std::vector<float> before0(table.Row(0), table.Row(0) + 2);
  std::vector<float> before5(table.Row(5), table.Row(5) + 2);
  const float g[] = {1.0f, -1.0f};
  table.AccumulateGrad(5, g);
  table.SparseSgdStep();
  EXPECT_EQ(table.Row(0)[0], before0[0]);
  EXPECT_NEAR(table.Row(5)[0], before5[0] - 0.1f, 1e-6f);
  EXPECT_NEAR(table.Row(5)[1], before5[1] + 0.1f, 1e-6f);
  EXPECT_EQ(table.touched_count(), 0u);  // cleared after step
}

TEST(EmbeddingTest, SparseAdamFirstStepIsSignedLr) {
  EmbeddingTable table("t", 4, 2, 0.01f, 0.0f);
  const float g[] = {2.0f, -0.3f};
  table.AccumulateGrad(1, g);
  table.SparseAdamStep();
  EXPECT_NEAR(table.Row(1)[0], -0.01f, 1e-4f);
  EXPECT_NEAR(table.Row(1)[1], 0.01f, 1e-4f);
}

TEST(EmbeddingTest, AccumulatedGradsSum) {
  EmbeddingTable table("t", 4, 1, 0.5f, 0.0f);
  const float g1[] = {1.0f};
  const float g2[] = {3.0f};
  table.AccumulateGrad(2, g1);
  table.AccumulateGrad(2, g2);
  table.SparseSgdStep();
  EXPECT_NEAR(table.Row(2)[0], -0.5f * 4.0f, 1e-6f);
}

TEST(EmbeddingTest, ClearGradsDiscards) {
  EmbeddingTable table("t", 4, 1, 0.5f, 0.0f);
  const float g[] = {1.0f};
  table.AccumulateGrad(2, g);
  table.ClearGrads();
  table.SparseSgdStep();
  EXPECT_EQ(table.Row(2)[0], 0.0f);
}

TEST(EmbeddingTest, L2AppliedToTouchedRows) {
  EmbeddingTable table("t", 4, 1, 0.1f, 1.0f);
  table.MutableRow(2)[0] = 1.0f;
  const float g[] = {0.0f};
  table.AccumulateGrad(2, g);
  table.SparseSgdStep();
  EXPECT_NEAR(table.Row(2)[0], 0.9f, 1e-6f);
}

}  // namespace
}  // namespace optinter
