// Tests for the dependency-free HTTP exporter: routing, the Prometheus
// /metrics endpoint, /healthz, /varz, and real-socket round trips against
// an ephemeral-port listener.

#include <gtest/gtest.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cstring>
#include <string>

#include "obs/http_exporter.h"
#include "obs/json.h"
#include "obs/registry.h"

namespace optinter {
namespace {

/// Blocking one-shot HTTP GET against 127.0.0.1:port; returns the raw
/// response (headers + body), or "" on connect failure.
std::string HttpGet(int port, const std::string& path,
                    const std::string& method = "GET") {
  const int fd = socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return "";
  sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<uint16_t>(port));
  inet_pton(AF_INET, "127.0.0.1", &addr.sin_addr);
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close(fd);
    return "";
  }
  const std::string request =
      method + " " + path + " HTTP/1.1\r\nHost: localhost\r\n\r\n";
  send(fd, request.data(), request.size(), 0);
  std::string response;
  char buf[2048];
  for (;;) {
    const ssize_t n = recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) break;
    response.append(buf, static_cast<size_t>(n));
  }
  close(fd);
  return response;
}

TEST(HttpExporterTest, RoutesWithoutSockets) {
  obs::MetricsRegistry::Global().GetCounter("test.exporter_counter")->Reset();
  obs::MetricsRegistry::Global()
      .GetCounter("test.exporter_counter")
      ->Add(5);
  obs::HttpExporter exporter;
  std::string body, content_type;

  EXPECT_EQ(exporter.HandleRoute("/metrics", &body, &content_type), 200);
  EXPECT_EQ(content_type, "text/plain; version=0.0.4; charset=utf-8");
  EXPECT_NE(body.find("test_exporter_counter 5"), std::string::npos);

  // Query strings are stripped before routing.
  EXPECT_EQ(exporter.HandleRoute("/metrics?ts=123", &body, &content_type),
            200);

  EXPECT_EQ(exporter.HandleRoute("/healthz", &body, &content_type), 200);
  EXPECT_EQ(body, "ok\n");

  EXPECT_EQ(exporter.HandleRoute("/varz", &body, &content_type), 200);
  EXPECT_EQ(content_type, "application/json; charset=utf-8");
  obs::JsonValue varz;
  std::string error;
  ASSERT_TRUE(obs::JsonValue::Parse(body, &varz, &error)) << error;
  ASSERT_NE(varz.Find("metrics"), nullptr);
  ASSERT_NE(varz.Find("spans"), nullptr);

  EXPECT_EQ(exporter.HandleRoute("/nope", &body, &content_type), 404);
}

TEST(HttpExporterTest, CustomVarzProviderWins) {
  obs::HttpExporter exporter;
  exporter.SetVarzProvider([] { return std::string("{\"custom\":true}"); });
  std::string body, content_type;
  EXPECT_EQ(exporter.HandleRoute("/varz", &body, &content_type), 200);
  EXPECT_EQ(body, "{\"custom\":true}");
}

TEST(HttpExporterTest, ServesMetricsOverRealSocket) {
  obs::MetricsRegistry::Global().GetCounter("test.exporter_live")->Reset();
  obs::MetricsRegistry::Global().GetCounter("test.exporter_live")->Add(9);
  obs::Histogram* h = obs::MetricsRegistry::Global().GetHistogram(
      "test.exporter_hist", {1.0, 10.0});
  h->Reset();
  h->Observe(0.5);
  h->Observe(100.0);

  obs::HttpExporter exporter;  // port 0 = ephemeral
  std::string error;
  ASSERT_TRUE(exporter.Start(&error)) << error;
  ASSERT_TRUE(exporter.running());
  ASSERT_GT(exporter.port(), 0);

  const std::string response = HttpGet(exporter.port(), "/metrics");
  EXPECT_NE(response.find("HTTP/1.1 200 OK"), std::string::npos);
  EXPECT_NE(response.find("Content-Length:"), std::string::npos);
  EXPECT_NE(response.find("test_exporter_live 9"), std::string::npos);
  EXPECT_NE(
      response.find("test_exporter_hist_bucket{le=\"+Inf\"} 2"),
      std::string::npos);

  EXPECT_NE(HttpGet(exporter.port(), "/healthz").find("ok"),
            std::string::npos);
  EXPECT_NE(HttpGet(exporter.port(), "/missing").find("404"),
            std::string::npos);
  // Non-GET methods are refused, HEAD gets headers only.
  EXPECT_NE(HttpGet(exporter.port(), "/metrics", "POST").find("405"),
            std::string::npos);
  const std::string head = HttpGet(exporter.port(), "/healthz", "HEAD");
  EXPECT_NE(head.find("200 OK"), std::string::npos);
  EXPECT_EQ(head.find("ok\n"), std::string::npos);

  const int port = exporter.port();
  exporter.Stop();
  EXPECT_FALSE(exporter.running());
  exporter.Stop();  // idempotent
  // The socket is really gone.
  EXPECT_EQ(HttpGet(port, "/healthz"), "");
}

TEST(HttpExporterTest, StartFailsOnBadHost) {
  obs::HttpExporterOptions options;
  options.host = "not an address";
  obs::HttpExporter exporter(options);
  std::string error;
  EXPECT_FALSE(exporter.Start(&error));
  EXPECT_FALSE(error.empty());
  EXPECT_FALSE(exporter.running());
}

TEST(HttpExporterTest, RestartAfterStop) {
  obs::HttpExporter exporter;
  std::string error;
  ASSERT_TRUE(exporter.Start(&error)) << error;
  exporter.Stop();
  ASSERT_TRUE(exporter.Start(&error)) << error;
  EXPECT_NE(HttpGet(exporter.port(), "/healthz").find("ok"),
            std::string::npos);
  exporter.Stop();
}

}  // namespace
}  // namespace optinter
