// Tests for the SIMD abstraction (tensor/simd.h), the aligned tensor
// storage (tensor/aligned.h), and the packed GEMM layer (tensor/kernels.cc):
//
//  * lane-op sanity and the fixed ReduceAdd combination order,
//  * polynomial Exp / Sigmoid accuracy against libm (and bitwise equality
//    with SigmoidScalar on the scalar backend, where the lane function IS
//    the scalar function),
//  * randomized property tests comparing GemmNN/NT/TN against the kept
//    naive references over odd shapes m,k,n ∈ {1,3,7,17,64,129} crossed
//    with alpha/beta edge cases — every packed-path corner (partial
//    micro-tiles, partial panels, KC blocking, the small-shape fallbacks)
//    is inside this grid,
//  * 64-byte alignment of Tensor storage.

#include <gtest/gtest.h>

#include <cmath>
#include <cstring>
#include <random>
#include <vector>

#include "tensor/aligned.h"
#include "tensor/kernels.h"
#include "tensor/simd.h"
#include "tensor/tensor.h"

namespace optinter {
namespace {

constexpr size_t kL = simd::kLanes;

std::vector<float> RandomVec(size_t n, std::mt19937* rng) {
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  std::vector<float> v(n);
  for (float& x : v) x = dist(*rng);
  return v;
}

// ---------------------------------------------------------------------------
// Lane ops.
// ---------------------------------------------------------------------------

TEST(SimdTest, BackendReportsCoherentConfig) {
  EXPECT_STREQ(SimdBackendName(), simd::kBackendName);
  EXPECT_GE(kL, 1u);
  EXPECT_EQ(kL & (kL - 1), 0u) << "lane count must be a power of two";
}

TEST(SimdTest, LaneArithmeticMatchesScalar) {
  std::mt19937 rng(123);
  const std::vector<float> a = RandomVec(kL, &rng);
  const std::vector<float> b = RandomVec(kL, &rng);
  const std::vector<float> c = RandomVec(kL, &rng);
  float out[simd::kLanes];

  simd::StoreU(out, simd::Add(simd::LoadU(a.data()), simd::LoadU(b.data())));
  for (size_t i = 0; i < kL; ++i) EXPECT_EQ(out[i], a[i] + b[i]);

  simd::StoreU(out, simd::Sub(simd::LoadU(a.data()), simd::LoadU(b.data())));
  for (size_t i = 0; i < kL; ++i) EXPECT_EQ(out[i], a[i] - b[i]);

  simd::StoreU(out, simd::Mul(simd::LoadU(a.data()), simd::LoadU(b.data())));
  for (size_t i = 0; i < kL; ++i) EXPECT_EQ(out[i], a[i] * b[i]);

  simd::StoreU(out, simd::Div(simd::LoadU(a.data()), simd::LoadU(b.data())));
  for (size_t i = 0; i < kL; ++i) EXPECT_EQ(out[i], a[i] / b[i]);

  simd::StoreU(out, simd::MulAdd(simd::LoadU(a.data()), simd::LoadU(b.data()),
                                 simd::LoadU(c.data())));
  for (size_t i = 0; i < kL; ++i) {
    EXPECT_EQ(out[i], simd::MulAddScalar(a[i], b[i], c[i]))
        << "vector MulAdd and MulAddScalar must round identically — the "
           "chunk-invariance contract depends on it";
  }

  simd::StoreU(out, simd::Abs(simd::LoadU(a.data())));
  for (size_t i = 0; i < kL; ++i) EXPECT_EQ(out[i], std::fabs(a[i]));

  simd::StoreU(out, simd::Sqrt(simd::Abs(simd::LoadU(a.data()))));
  for (size_t i = 0; i < kL; ++i) {
    EXPECT_EQ(out[i], std::sqrt(std::fabs(a[i])))
        << "Sqrt must be correctly rounded (== std::sqrt) on every backend";
  }
}

TEST(SimdTest, MaskSelectAndMax) {
  std::mt19937 rng(77);
  const std::vector<float> a = RandomVec(kL, &rng);
  float out[simd::kLanes];
  const simd::VecF zero = simd::Zero();
  const simd::VecF one = simd::Set1(1.0f);
  const simd::VecF av = simd::LoadU(a.data());

  simd::StoreU(out, simd::Select(simd::GtMask(av, zero), av, zero));
  for (size_t i = 0; i < kL; ++i) {
    EXPECT_EQ(out[i], a[i] > 0.0f ? a[i] : 0.0f);
  }
  simd::StoreU(out, simd::And(simd::GtMask(av, zero), one));
  for (size_t i = 0; i < kL; ++i) {
    EXPECT_EQ(out[i], a[i] > 0.0f ? 1.0f : 0.0f);
  }
  simd::StoreU(out, simd::Max(av, zero));
  for (size_t i = 0; i < kL; ++i) {
    EXPECT_EQ(out[i], a[i] > 0.0f ? a[i] : 0.0f);
  }
  simd::StoreU(out, simd::Min(av, zero));
  for (size_t i = 0; i < kL; ++i) {
    EXPECT_EQ(out[i], a[i] < 0.0f ? a[i] : 0.0f);
  }
}

TEST(SimdTest, ReduceAddIsExactForRepresentableSums) {
  // Small integers sum exactly in float, so any lane order gives the same
  // answer — this checks ReduceAdd actually adds every lane exactly once.
  float lanes[simd::kLanes];
  float expect = 0.0f;
  for (size_t i = 0; i < kL; ++i) {
    lanes[i] = static_cast<float>(i + 1);
    expect += lanes[i];
  }
  EXPECT_EQ(simd::ReduceAdd(simd::LoadU(lanes)), expect);
}

TEST(SimdTest, ReduceAddIsDeterministic) {
  // Same vector reduced twice must give identical bits (the fixed tree is
  // what makes Dot/Sum deterministic per backend).
  std::mt19937 rng(9);
  const std::vector<float> a = RandomVec(kL, &rng);
  const float r1 = simd::ReduceAdd(simd::LoadU(a.data()));
  const float r2 = simd::ReduceAdd(simd::LoadU(a.data()));
  EXPECT_EQ(std::memcmp(&r1, &r2, sizeof(float)), 0);
}

// ---------------------------------------------------------------------------
// Exp / Sigmoid.
// ---------------------------------------------------------------------------

TEST(SimdTest, ExpMatchesLibmWithinTolerance) {
  // The Cephes polynomial is good to ~2 ulp over the clamped range; check
  // a dense sweep including negatives, zero, and the clamp edges.
  for (float x = -87.0f; x <= 87.0f; x += 0.37f) {
    float in[simd::kLanes];
    float out[simd::kLanes];
    for (size_t i = 0; i < kL; ++i) in[i] = x;
    simd::StoreU(out, simd::Exp(simd::LoadU(in)));
    const double expect = std::exp(static_cast<double>(x));
    for (size_t i = 0; i < kL; ++i) {
      EXPECT_NEAR(out[i] / expect, 1.0, 1e-6) << "x=" << x;
    }
  }
}

TEST(SimdTest, ExpExtremesSaturateWithoutNan) {
  // Large positive inputs overflow to +inf (exactly like std::exp on
  // float); the input clamp exists so the polynomial's integer exponent
  // math never wraps into NaN territory. Large negative inputs underflow
  // toward zero.
  float in[simd::kLanes];
  float out[simd::kLanes];
  for (size_t i = 0; i < kL; ++i) in[i] = 500.0f;
  simd::StoreU(out, simd::Exp(simd::LoadU(in)));
  for (size_t i = 0; i < kL; ++i) {
    EXPECT_FALSE(std::isnan(out[i]));
    EXPECT_GT(out[i], 1e38f);
  }
  for (size_t i = 0; i < kL; ++i) in[i] = -500.0f;
  simd::StoreU(out, simd::Exp(simd::LoadU(in)));
  for (size_t i = 0; i < kL; ++i) {
    EXPECT_GE(out[i], 0.0f);
    EXPECT_LT(out[i], 1e-37f);
  }
}

TEST(SimdTest, SigmoidMatchesScalarReference) {
  for (float z = -30.0f; z <= 30.0f; z += 0.11f) {
    float in[simd::kLanes];
    float out[simd::kLanes];
    for (size_t i = 0; i < kL; ++i) in[i] = z;
    simd::StoreU(out, simd::Sigmoid(simd::LoadU(in)));
    const float expect = SigmoidScalar(z);
    for (size_t i = 0; i < kL; ++i) {
      EXPECT_NEAR(out[i], expect, 1e-6f) << "z=" << z;
      if (kL == 1) {
        // On the scalar backend the lane function IS SigmoidScalar.
        EXPECT_EQ(std::memcmp(&out[i], &expect, sizeof(float)), 0);
      }
    }
  }
}

// ---------------------------------------------------------------------------
// Aligned storage.
// ---------------------------------------------------------------------------

TEST(AlignedStorageTest, TensorDataIs64ByteAligned) {
  // Many sizes, including ones that stress small-allocation paths.
  for (size_t n : {1u, 3u, 17u, 64u, 129u, 1000u, 4096u}) {
    Tensor t({n});
    EXPECT_TRUE(IsTensorAligned(t.data())) << "n=" << n;
    Tensor m({n, 7u});
    EXPECT_TRUE(IsTensorAligned(m.data())) << "n=" << n;
  }
}

TEST(AlignedStorageTest, AlignedVectorKeepsAlignmentAcrossGrowth) {
  AlignedVector<float> v;
  for (size_t n = 1; n < 5000; n = n * 3 + 1) {
    v.resize(n);
    EXPECT_TRUE(IsTensorAligned(v.data())) << "n=" << n;
  }
}

// ---------------------------------------------------------------------------
// Randomized GEMM property tests vs the naive references.
// ---------------------------------------------------------------------------

struct GemmCase {
  size_t m, k, n;
  float alpha, beta;
};

// Odd shapes hit every packed-path corner: partial micro-tiles (m % kMR),
// partial panels (n % kNR), short reductions, and the small-shape
// fallbacks. alpha/beta cover the identity, scaling, and overwrite edges.
std::vector<GemmCase> GemmCases() {
  const size_t dims[] = {1, 3, 7, 17, 64, 129};
  const float alphas[] = {1.0f, 0.5f, 0.0f};
  const float betas[] = {0.0f, 1.0f, -0.25f};
  std::vector<GemmCase> cases;
  size_t idx = 0;
  for (size_t m : dims) {
    for (size_t k : dims) {
      for (size_t n : dims) {
        // Cycle through the alpha/beta grid rather than crossing it fully —
        // every (alpha, beta) pair still appears many times across shapes.
        const float alpha = alphas[idx % 3];
        const float beta = betas[(idx / 3) % 3];
        ++idx;
        cases.push_back({m, k, n, alpha, beta});
      }
    }
  }
  // Pin the full alpha/beta cross on one packed shape and one fallback
  // shape so no pair is covered only by coincidence.
  for (float alpha : alphas) {
    for (float beta : betas) {
      cases.push_back({17, 64, 17, alpha, beta});
      cases.push_back({3, 7, 3, alpha, beta});
    }
  }
  return cases;
}

using GemmFn = void (*)(const float*, const float*, float*, size_t, size_t,
                        size_t, float, float);

void RunGemmProperty(GemmFn fn, GemmFn ref, bool b_transposed) {
  std::mt19937 rng(20260806);
  for (const GemmCase& gc : GemmCases()) {
    const size_t out_rows = gc.m;  // NN/NT write [m×n]; TN is passed m=k.
    const std::vector<float> a = RandomVec(gc.m * gc.k, &rng);
    const std::vector<float> b = RandomVec(
        b_transposed ? gc.n * gc.k : gc.k * gc.n, &rng);
    std::vector<float> c = RandomVec(out_rows * gc.n, &rng);
    std::vector<float> c_ref = c;
    fn(a.data(), b.data(), c.data(), gc.m, gc.k, gc.n, gc.alpha, gc.beta);
    ref(a.data(), b.data(), c_ref.data(), gc.m, gc.k, gc.n, gc.alpha,
        gc.beta);
    // Accumulation-order differences grow with the reduction depth.
    const float tol =
        1e-4f * (1.0f + std::sqrt(static_cast<float>(gc.k + gc.m)));
    for (size_t i = 0; i < c.size(); ++i) {
      ASSERT_NEAR(c[i], c_ref[i], tol)
          << "m=" << gc.m << " k=" << gc.k << " n=" << gc.n
          << " alpha=" << gc.alpha << " beta=" << gc.beta << " i=" << i;
    }
  }
}

TEST(GemmPropertyTest, GemmNNMatchesReference) {
  RunGemmProperty(&GemmNN, &internal::GemmNNRef, /*b_transposed=*/false);
}

TEST(GemmPropertyTest, GemmNTMatchesReference) {
  RunGemmProperty(&GemmNT, &internal::GemmNTRef, /*b_transposed=*/true);
}

TEST(GemmPropertyTest, GemmTNMatchesReference) {
  // TN writes C[k×n] and reduces over m: reuse the harness by noting its
  // (m, k) are the GEMM's (reduction, out_rows)... the shapes are already
  // symmetric in the case grid, so call directly with the TN contract.
  std::mt19937 rng(4242);
  for (const GemmCase& gc : GemmCases()) {
    const std::vector<float> a = RandomVec(gc.m * gc.k, &rng);
    const std::vector<float> b = RandomVec(gc.m * gc.n, &rng);
    std::vector<float> c = RandomVec(gc.k * gc.n, &rng);
    std::vector<float> c_ref = c;
    GemmTN(a.data(), b.data(), c.data(), gc.m, gc.k, gc.n, gc.alpha,
           gc.beta);
    internal::GemmTNRef(a.data(), b.data(), c_ref.data(), gc.m, gc.k, gc.n,
                        gc.alpha, gc.beta);
    const float tol =
        1e-4f * (1.0f + std::sqrt(static_cast<float>(gc.m + gc.k)));
    for (size_t i = 0; i < c.size(); ++i) {
      ASSERT_NEAR(c[i], c_ref[i], tol)
          << "m=" << gc.m << " k=" << gc.k << " n=" << gc.n
          << " alpha=" << gc.alpha << " beta=" << gc.beta << " i=" << i;
    }
  }
}

TEST(GemmPropertyTest, RepeatedCallsAreBitIdentical) {
  // Same inputs, same build → same bits, including across the packed
  // path's thread_local buffer reuse.
  std::mt19937 rng(5150);
  const size_t m = 129, k = 64, n = 129;
  const std::vector<float> a = RandomVec(m * k, &rng);
  const std::vector<float> b = RandomVec(k * n, &rng);
  std::vector<float> c1(m * n, 0.0f);
  std::vector<float> c2(m * n, 0.0f);
  GemmNN(a.data(), b.data(), c1.data(), m, k, n, 1.0f, 0.0f);
  GemmNN(a.data(), b.data(), c2.data(), m, k, n, 1.0f, 0.0f);
  EXPECT_EQ(std::memcmp(c1.data(), c2.data(), c1.size() * sizeof(float)), 0);
}

// ---------------------------------------------------------------------------
// Vectorized elementwise kernels vs simple references.
// ---------------------------------------------------------------------------

TEST(SimdKernelsTest, DotMatchesLongDoubleReference) {
  std::mt19937 rng(31);
  for (size_t n : {0u, 1u, 3u, 17u, 64u, 129u, 1000u}) {
    const std::vector<float> x = RandomVec(n, &rng);
    const std::vector<float> y = RandomVec(n, &rng);
    double expect = 0.0;
    for (size_t i = 0; i < n; ++i) {
      expect += static_cast<double>(x[i]) * static_cast<double>(y[i]);
    }
    EXPECT_NEAR(Dot(n, x.data(), y.data()), expect,
                1e-5 * (1.0 + std::sqrt(static_cast<double>(n))))
        << "n=" << n;
  }
}

TEST(SimdKernelsTest, AxpyScaleHadamardSumMatchReferences) {
  std::mt19937 rng(32);
  for (size_t n : {1u, 3u, 17u, 129u, 1000u}) {
    const std::vector<float> x = RandomVec(n, &rng);
    std::vector<float> y = RandomVec(n, &rng);
    std::vector<float> y_ref = y;
    Axpy(n, 0.77f, x.data(), y.data());
    for (size_t i = 0; i < n; ++i) {
      y_ref[i] = simd::MulAddScalar(0.77f, x[i], y_ref[i]);
    }
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(y[i], y_ref[i]) << i;

    std::vector<float> s = x;
    Scale(n, -1.5f, s.data());
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(s[i], -1.5f * x[i]) << i;

    std::vector<float> h(n);
    Hadamard(n, x.data(), y.data(), h.data());
    for (size_t i = 0; i < n; ++i) EXPECT_EQ(h[i], x[i] * y[i]) << i;

    std::vector<float> ha = y;
    HadamardAccum(n, x.data(), s.data(), ha.data());
    for (size_t i = 0; i < n; ++i) {
      EXPECT_EQ(ha[i], simd::MulAddScalar(x[i], s[i], y[i])) << i;
    }

    double expect = 0.0;
    for (size_t i = 0; i < n; ++i) expect += static_cast<double>(x[i]);
    EXPECT_NEAR(Sum(n, x.data()), expect,
                1e-5 * (1.0 + std::sqrt(static_cast<double>(n))))
        << "n=" << n;
  }
}

}  // namespace
}  // namespace optinter
