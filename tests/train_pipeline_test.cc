// Tests for the pipelined training executor (src/train/pipeline_executor.h):
// the grad-apply fence for weight-dependent prepares, the steady-state
// zero-allocation contract of the phase-split TrainStep, workspace reuse
// across epochs, and RunReport::WriteEvery periodic flushing.

#include <gtest/gtest.h>

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <new>
#include <sstream>
#include <vector>

#include "common/thread_pool.h"
#include "core/fixed_arch_model.h"
#include "core/search_model.h"
#include "models/hyperparams.h"
#include "models/prepared_batch.h"
#include "obs/registry.h"
#include "obs/run_report.h"
#include "test_data.h"
#include "train/pipeline_executor.h"
#include "train/trainer.h"

// --------------------------------------------------------------------------
// Global allocation counter. std::vector and Tensor go through
// operator new(size_t) (operator new[] forwards to it), so counting here
// catches every steady-state heap allocation the contract forbids. The
// aligned overloads are replaced too: Tensor storage and the kernel packing
// buffers allocate through AlignedAllocator (tensor/aligned.h), which calls
// operator new(size_t, align_val_t) — without these hooks the contract
// would silently stop covering every tensor buffer in the model.
// --------------------------------------------------------------------------

namespace {
std::atomic<bool> g_count_allocs{false};
std::atomic<size_t> g_alloc_events{0};

void* CountedAlloc(std::size_t size, std::size_t align) {
  if (g_count_allocs.load(std::memory_order_relaxed)) {
    g_alloc_events.fetch_add(1, std::memory_order_relaxed);
  }
  void* p = align == 0 ? std::malloc(size)
                       : std::aligned_alloc(align, (size + align - 1) /
                                                       align * align);
  if (p == nullptr) throw std::bad_alloc();
  return p;
}
}  // namespace

void* operator new(std::size_t size) { return CountedAlloc(size, 0); }
void* operator new(std::size_t size, std::align_val_t align) {
  return CountedAlloc(size, static_cast<std::size_t>(align));
}

void operator delete(void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace optinter {
namespace {

using testing::HeadBatch;
using testing::SharedTinyData;

HyperParams TinyHp() {
  HyperParams hp = DefaultHyperParams("tiny");
  hp.seed = 77;
  return hp;
}

Architecture MixedArch(size_t num_pairs) {
  Architecture arch(num_pairs, InterMethod::kNaive);
  arch[0] = InterMethod::kMemorize;
  arch[1] = InterMethod::kFactorize;
  return arch;
}

struct PoolGuard {
  size_t saved = ThreadPool::Global().num_threads();
  ~PoolGuard() { ThreadPool::SetGlobalThreads(saved); }
};

// Allocation events across `steps` repetitions of model->TrainStep(batch)
// after `warmup` untracked repetitions.
size_t CountSteadyStateAllocs(CtrModel* model, const Batch& batch,
                              int warmup, int steps) {
  for (int i = 0; i < warmup; ++i) model->TrainStep(batch);
  g_alloc_events.store(0);
  g_count_allocs.store(true);
  for (int i = 0; i < steps; ++i) model->TrainStep(batch);
  g_count_allocs.store(false);
  return g_alloc_events.load();
}

// --------------------------------------------------------------------------
// Zero-allocation steady state
// --------------------------------------------------------------------------

// After warmup every per-step buffer (prepared tables, scatter slots,
// activations, gradient partials) must be reused from capacity: a repeated
// identical batch performs zero heap allocations per TrainStep. Runs at one
// pool thread — the serial/inline execution path; the multi-thread fan-out
// allocates task objects by design.
TEST(TrainPipelineTest, FixedArchTrainStepSteadyStateZeroAlloc) {
  PoolGuard guard;
  ThreadPool::SetGlobalThreads(1);
  const auto& p = SharedTinyData();
  FixedArchModel model(p.data, MixedArch(p.data.num_pairs()), TinyHp(),
                       "alloc");
  const Batch batch = HeadBatch(p, 256);
  EXPECT_EQ(CountSteadyStateAllocs(&model, batch, /*warmup=*/3, /*steps=*/5),
            0u);
}

TEST(TrainPipelineTest, SearchModelTrainStepSteadyStateZeroAlloc) {
  PoolGuard guard;
  ThreadPool::SetGlobalThreads(1);
  const auto& p = SharedTinyData();
  SearchModel model(p.data, TinyHp());
  const Batch batch = HeadBatch(p, 256);
  EXPECT_EQ(CountSteadyStateAllocs(&model, batch, /*warmup=*/3, /*steps=*/5),
            0u);
}

// The executor's workspace-growth counter tells the same story at run
// scale: once capacities reach their high-water mark, later epochs must
// not grow the pooled workspaces. One full-split batch per epoch keeps the
// per-epoch row multiset (and therefore every capacity requirement)
// identical despite reshuffling — with smaller batches a reshuffle can
// legitimately raise a per-shard high-water mark.
TEST(TrainPipelineTest, WorkspaceStopsGrowingAfterWarmup) {
  PoolGuard guard;
  ThreadPool::SetGlobalThreads(2);
  const auto& p = SharedTinyData();
  FixedArchModel model(p.data, MixedArch(p.data.num_pairs()), TinyHp(),
                       "grow");
  Batcher batcher(&p.data, p.splits.train,
                  /*batch_size=*/p.splits.train.size(), /*seed=*/3);
  PipelinedTrainExecutor executor(&model);
  obs::Counter* growth = obs::MetricsRegistry::Global().GetCounter(
      "pipeline.workspace_growth_steps");
  batcher.StartEpoch();
  executor.RunEpoch(&batcher);  // warmup epoch: growth expected
  const uint64_t after_warmup = growth->Value();
  for (int e = 0; e < 3; ++e) {
    batcher.StartEpoch();
    executor.RunEpoch(&batcher);
  }
  EXPECT_EQ(growth->Value(), after_warmup);
  obs::Gauge* bytes =
      obs::MetricsRegistry::Global().GetGauge("pipeline.workspace_bytes");
  EXPECT_GT(bytes->Value(), 0.0);
}

// --------------------------------------------------------------------------
// Grad-apply fencing
// --------------------------------------------------------------------------

// Minimal phased model whose prepare is declared weight-dependent. Each
// PrepareBatch records how many ApplyGrads had completed when it ran; the
// fence must make that count exactly the batch index — i.e. prepare t
// always observes step t-1's update, never an older state.
class FenceProbeModel : public CtrModel {
 public:
  std::string Name() const override { return "fence-probe"; }
  bool SupportsPhasedTrainStep() const override { return true; }
  bool PrepareIsWeightIndependent() const override { return false; }

  void PrepareBatch(const Batch& batch, PreparedBatch* prep) const override {
    prep->BeginFill(batch);
    // Serialized by the executor (at most one prepare in flight, joined
    // before the next launch), so no lock is needed.
    prepare_applied_.push_back(applied_.load(std::memory_order_relaxed));
  }
  float ForwardBackward(const PreparedBatch& prep) override {
    return prep.size > 0 ? 0.5f : 0.0f;
  }
  void ApplyGrads() override {
    applied_.fetch_add(1, std::memory_order_relaxed);
  }
  float TrainStep(const Batch& batch) override {
    PreparedBatch prep;
    PrepareBatch(batch, &prep);
    const float loss = ForwardBackward(prep);
    ApplyGrads();
    return loss;
  }
  void Predict(const Batch& batch, std::vector<float>* probs) override {
    probs->assign(batch.size, 0.5f);
  }
  size_t ParamCount() const override { return 0; }

  mutable std::atomic<uint64_t> applied_{0};
  mutable std::vector<uint64_t> prepare_applied_;
};

TEST(TrainPipelineTest, FenceOrdersWeightDependentPrepares) {
  PoolGuard guard;
  ThreadPool::SetGlobalThreads(4);
  const auto& p = SharedTinyData();
  FenceProbeModel model;
  Batcher batcher(&p.data, p.splits.train, /*batch_size=*/64, /*seed=*/11);
  PipelinedTrainExecutor executor(&model);
  batcher.StartEpoch();
  const PipelinedTrainExecutor::EpochStats stats = executor.RunEpoch(&batcher);
  ASSERT_EQ(model.prepare_applied_.size(), stats.batches);
  ASSERT_GT(stats.batches, 4u);
  for (size_t t = 0; t < model.prepare_applied_.size(); ++t) {
    EXPECT_EQ(model.prepare_applied_[t], t) << "prepare " << t;
  }
}

// Without the weight-dependence flag the executor never blocks a prepare on
// the fence; the run still visits every row exactly once, in order.
TEST(TrainPipelineTest, UnfencedEpochCoversAllRows) {
  PoolGuard guard;
  ThreadPool::SetGlobalThreads(4);
  const auto& p = SharedTinyData();
  FixedArchModel model(p.data, MixedArch(p.data.num_pairs()), TinyHp(),
                       "cover");
  Batcher batcher(&p.data, p.splits.train, /*batch_size=*/512, /*seed=*/5);
  PipelinedTrainExecutor executor(&model);
  batcher.StartEpoch();
  const PipelinedTrainExecutor::EpochStats stats = executor.RunEpoch(&batcher);
  EXPECT_EQ(stats.rows, p.splits.train.size());
  EXPECT_EQ(stats.batches,
            (p.splits.train.size() + 511) / 512);
  EXPECT_GT(stats.loss_sum, 0.0);
}

// --------------------------------------------------------------------------
// RunReport::WriteEvery
// --------------------------------------------------------------------------

TEST(RunReportWriteEveryTest, NotArmedNeverWrites) {
  obs::RunReport report("idle");
  EXPECT_FALSE(report.MaybeWriteEvery());
}

TEST(RunReportWriteEveryTest, FlushesWhenIntervalElapsed) {
  const std::string path = ::testing::TempDir() + "/periodic_report.json";
  std::remove(path.c_str());
  obs::RunReport report("periodic");
  report.WriteEvery(path, /*seconds=*/0.0);
  EXPECT_TRUE(report.MaybeWriteEvery());
  std::ifstream in(path);
  ASSERT_TRUE(in.good());
  std::stringstream buf;
  buf << in.rdbuf();
  const std::string contents = buf.str();
  EXPECT_NE(contents.find("\"schema_version\""), std::string::npos);
  EXPECT_NE(contents.find("\"metrics\""), std::string::npos);
  EXPECT_NE(contents.find("\"spans\""), std::string::npos);
  std::remove(path.c_str());
}

TEST(RunReportWriteEveryTest, RespectsInterval) {
  const std::string path = ::testing::TempDir() + "/never_report.json";
  std::remove(path.c_str());
  obs::RunReport report("slow");
  report.WriteEvery(path, /*seconds=*/3600.0);
  EXPECT_FALSE(report.MaybeWriteEvery());
  std::ifstream in(path);
  EXPECT_FALSE(in.good());
}

// End-to-end: a report handed to TrainModel with a zero-second interval is
// flushed from inside the training loop.
TEST(RunReportWriteEveryTest, TrainerTicksPeriodicReport) {
  PoolGuard guard;
  ThreadPool::SetGlobalThreads(2);
  const auto& p = SharedTinyData();
  const std::string path = ::testing::TempDir() + "/trainer_report.json";
  std::remove(path.c_str());
  obs::RunReport report("train");
  report.WriteEvery(path, /*seconds=*/0.0);
  FixedArchModel model(p.data, MixedArch(p.data.num_pairs()), TinyHp(),
                       "tick");
  TrainOptions opts;
  opts.epochs = 1;
  opts.batch_size = 1024;
  opts.patience = 0;
  opts.report = &report;
  TrainModel(&model, p.data, p.splits, opts);
  std::ifstream in(path);
  EXPECT_TRUE(in.good());
  std::remove(path.c_str());
}

}  // namespace
}  // namespace optinter
