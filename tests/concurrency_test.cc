// Concurrency and determinism tests for the parallel train/eval paths.
//
// Three families:
//  - concurrent re-entrant Predict on distinct batches (also the targeted
//    TSan workload: run under -fsanitize=thread in CI),
//  - bit-identical results across global thread counts (1, 2, 8) for the
//    chunked backward paths, the embedding scatter, full TrainModel runs
//    and the search stage — the determinism contract of DESIGN.md,
//  - finite-difference gradient checks of the parallel backward paths via
//    CheckGradientAcrossThreadCounts.

#include <gtest/gtest.h>

#include <algorithm>
#include <cstring>
#include <memory>
#include <vector>

#include "common/rng.h"
#include "common/thread_pool.h"
#include "core/fixed_arch_model.h"
#include "core/pipeline.h"
#include "core/search_model.h"
#include "gradient_check.h"
#include "metrics/metrics.h"
#include "models/feature_embedding.h"
#include "models/forward_context.h"
#include "nn/layers.h"
#include <unistd.h>

#include <filesystem>

#include "data/shard_format.h"
#include "data/stream_reader.h"
#include "nn/optimizer.h"
#include "tensor/kernels.h"
#include "test_data.h"
#include "train/pipeline_executor.h"
#include "train/stream_trainer.h"
#include "train/trainer.h"

namespace optinter {
namespace {

using testing::CheckGradientAcrossThreadCounts;
using testing::HeadBatch;
using testing::SharedTinyData;

HyperParams TinyHp() {
  HyperParams hp = DefaultHyperParams("tiny");
  hp.seed = 77;
  return hp;
}

double WeightedSum(const Tensor& y, const Tensor& c) {
  double s = 0.0;
  for (size_t i = 0; i < y.size(); ++i) {
    s += static_cast<double>(y[i]) * c[i];
  }
  return s;
}

Tensor RandomTensor(std::vector<size_t> shape, Rng* rng, double scale = 1.0) {
  Tensor t(std::move(shape));
  for (size_t i = 0; i < t.size(); ++i) {
    t[i] = static_cast<float>(rng->Uniform(-scale, scale));
  }
  return t;
}

// Restores the global pool size when a test returns (tests resize it to
// exercise specific thread counts).
struct PoolGuard {
  size_t saved = ThreadPool::Global().num_threads();
  ~PoolGuard() { ThreadPool::SetGlobalThreads(saved); }
};

// A mixed architecture covering all three interaction methods.
Architecture MixedArch(size_t num_pairs) {
  Architecture arch(num_pairs, InterMethod::kNaive);
  arch[0] = InterMethod::kMemorize;
  arch[1] = InterMethod::kFactorize;
  arch[4] = InterMethod::kMemorize;
  arch[7] = InterMethod::kFactorize;
  return arch;
}

// Disjoint consecutive batches over the training split.
std::vector<Batch> SplitBatches(const testing::PreparedData& p,
                                size_t num_batches, size_t batch_size) {
  std::vector<Batch> batches;
  for (size_t i = 0; i < num_batches; ++i) {
    Batch b;
    b.data = &p.data;
    b.rows = p.splits.train.data() + i * batch_size;
    b.size = batch_size;
    CHECK_LE((i + 1) * batch_size, p.splits.train.size());
    batches.push_back(b);
  }
  return batches;
}

// ---------------------------------------------------------------------------
// Concurrent re-entrant Predict
// ---------------------------------------------------------------------------

// Runs Predict over `batches` sequentially (reference) and concurrently
// (one pool task per batch, each with a private ForwardContext), and
// expects bit-identical probabilities.
void CheckConcurrentPredict(const CtrModel& model,
                            const std::vector<Batch>& batches) {
  ASSERT_TRUE(model.SupportsReentrantPredict());
  std::vector<std::vector<float>> reference(batches.size());
  {
    ForwardContext ctx;
    for (size_t i = 0; i < batches.size(); ++i) {
      model.Predict(batches[i], &reference[i], &ctx);
    }
  }
  std::vector<std::vector<float>> concurrent(batches.size());
  ThreadPool pool(4);
  for (size_t i = 0; i < batches.size(); ++i) {
    pool.Submit([&, i] {
      ForwardContext ctx;
      model.Predict(batches[i], &concurrent[i], &ctx);
    });
  }
  pool.Wait();
  for (size_t i = 0; i < batches.size(); ++i) {
    ASSERT_EQ(concurrent[i].size(), reference[i].size());
    for (size_t k = 0; k < reference[i].size(); ++k) {
      EXPECT_EQ(concurrent[i][k], reference[i][k])
          << "batch " << i << " row " << k;
    }
  }
}

TEST(ConcurrencyTest, ConcurrentPredictFixedArchMatchesSequential) {
  const auto& p = SharedTinyData();
  FixedArchModel model(p.data, MixedArch(p.data.num_pairs()), TinyHp(),
                       "concurrent");
  Batch train_b = HeadBatch(p, 256);
  for (int i = 0; i < 10; ++i) model.TrainStep(train_b);
  CheckConcurrentPredict(model, SplitBatches(p, 8, 64));
}

TEST(ConcurrencyTest, ConcurrentPredictSearchModelMatchesSequential) {
  const auto& p = SharedTinyData();
  SearchModel model(p.data, TinyHp());
  Batch train_b = HeadBatch(p, 256);
  for (int i = 0; i < 5; ++i) model.TrainStep(train_b);
  CheckConcurrentPredict(model, SplitBatches(p, 8, 64));
}

TEST(ConcurrencyTest, EvaluateModelParallelBitwiseMatchesSerial) {
  PoolGuard guard;
  ThreadPool::SetGlobalThreads(4);
  const auto& p = SharedTinyData();
  FixedArchModel model(p.data, MixedArch(p.data.num_pairs()), TinyHp(),
                       "eval");
  Batch train_b = HeadBatch(p, 256);
  for (int i = 0; i < 10; ++i) model.TrainStep(train_b);
  EvalOptions serial;
  serial.parallel = false;
  serial.batch_size = 64;  // many batches → the parallel path has work
  EvalOptions parallel = serial;
  parallel.parallel = true;
  const EvalMetrics ref = EvaluateModel(&model, p.data, p.splits.val, serial);
  const EvalMetrics par =
      EvaluateModel(&model, p.data, p.splits.val, parallel);
  EXPECT_EQ(ref.auc, par.auc);
  EXPECT_EQ(ref.logloss, par.logloss);
}

// Distinct layer objects may run their (internally chunked) backward
// passes concurrently: all per-call state is in caller-owned workspaces.
// Primarily a TSan workload; the bit-identity of each result is checked
// against a serial reference.
TEST(ConcurrencyTest, ConcurrentBackwardOnDistinctLayers) {
  Rng rng(5);
  constexpr size_t kLayers = 4;
  std::vector<Linear> layers;
  std::vector<Tensor> xs, cs;
  for (size_t l = 0; l < kLayers; ++l) {
    layers.emplace_back("l" + std::to_string(l), 32, 8, 1e-3f, 0.0f, &rng);
    xs.push_back(RandomTensor({2048, 32}, &rng));
    cs.push_back(RandomTensor({2048, 8}, &rng));
  }
  // Serial reference.
  std::vector<std::vector<float>> ref_dw(kLayers);
  for (size_t l = 0; l < kLayers; ++l) {
    layers[l].weight.grad.Fill(0.0f);
    layers[l].bias.grad.Fill(0.0f);
    LinearWorkspace ws;
    Tensor y, dx;
    layers[l].Forward(xs[l], &y, &ws);
    layers[l].Backward(cs[l], &dx, ws);
    ref_dw[l].assign(layers[l].weight.grad.data(),
                     layers[l].weight.grad.data() +
                         layers[l].weight.grad.size());
  }
  // Concurrent re-run.
  for (size_t l = 0; l < kLayers; ++l) {
    layers[l].weight.grad.Fill(0.0f);
    layers[l].bias.grad.Fill(0.0f);
  }
  ThreadPool pool(4);
  for (size_t l = 0; l < kLayers; ++l) {
    pool.Submit([&, l] {
      LinearWorkspace ws;
      Tensor y, dx;
      layers[l].Forward(xs[l], &y, &ws);
      layers[l].Backward(cs[l], &dx, ws);
    });
  }
  pool.Wait();
  for (size_t l = 0; l < kLayers; ++l) {
    for (size_t i = 0; i < ref_dw[l].size(); ++i) {
      EXPECT_EQ(layers[l].weight.grad[i], ref_dw[l][i])
          << "layer " << l << " dW[" << i << "]";
    }
  }
}

// Full search epoch with a multi-thread pool — the broadest TSan workload:
// Gumbel sampling, gather, z-assembly, MLP forward/backward, the chunked
// interaction backward, sharded scatter, and both optimizers.
TEST(ConcurrencyTest, SearchEpochRunsUnderThreads) {
  PoolGuard guard;
  ThreadPool::SetGlobalThreads(4);
  const auto& p = SharedTinyData();
  SearchOptions opts;
  opts.search_epochs = 1;
  const SearchResult res =
      RunSearchStage(p.data, p.splits, TinyHp(), opts);
  EXPECT_EQ(res.arch.size(), p.data.num_pairs());
}

// ---------------------------------------------------------------------------
// Bit-identical results across thread counts
// ---------------------------------------------------------------------------

TEST(DeterminismTest, LinearBackwardBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  Rng rng(91);
  // Shapes cross both parallel thresholds: dy is 8192×8 = 65536 floats
  // (chunked db reduction) and the dW GEMM is 8192·8·48 ≈ 3.1M flops
  // (tree-reduced GemmTN).
  Linear lin("t", 48, 8, 1e-3f, 0.0f, &rng);
  Tensor x = RandomTensor({8192, 48}, &rng, 0.5);
  Tensor c = RandomTensor({8192, 8}, &rng, 0.5);
  auto run = [&]() {
    lin.weight.grad.Fill(0.0f);
    lin.bias.grad.Fill(0.0f);
    LinearWorkspace ws;
    Tensor y, dx;
    lin.Forward(x, &y, &ws);
    lin.Backward(c, &dx, ws);
    std::vector<float> out(lin.weight.grad.data(),
                           lin.weight.grad.data() + lin.weight.grad.size());
    out.insert(out.end(), lin.bias.grad.data(),
               lin.bias.grad.data() + lin.bias.grad.size());
    out.insert(out.end(), dx.data(), dx.data() + dx.size());
    return out;
  };
  ThreadPool::SetGlobalThreads(1);
  const std::vector<float> ref = run();
  for (size_t threads : {2u, 8u}) {
    ThreadPool::SetGlobalThreads(threads);
    const std::vector<float> got = run();
    ASSERT_EQ(got.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i], ref[i]) << threads << " threads, index " << i;
    }
  }
}

TEST(DeterminismTest, EmbeddingScatterBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  const auto& p = SharedTinyData();
  Rng rng(17);
  FeatureEmbedding emb(p.data, 8, 1e-3f, 0.0f, &rng);
  Batch batch = HeadBatch(p, 1024);  // 1024×56 floats → parallel scatter
  Tensor d_out = RandomTensor({batch.size, emb.output_dim()}, &rng);
  auto run = [&]() {
    emb.ClearGrads();
    Tensor out;
    emb.Forward(batch, &out);
    emb.Backward(d_out);
    // Flatten every table's accumulated sparse grads in id order.
    std::vector<float> grads;
    for (size_t f = 0; f < p.data.num_categorical(); ++f) {
      const EmbeddingTable& t = emb.cat_table(f);
      for (size_t id = 0; id < t.vocab_size(); ++id) {
        const float* g = t.AccumulatedGrad(static_cast<int32_t>(id));
        if (g == nullptr) {
          grads.insert(grads.end(), t.dim(), 0.0f);
        } else {
          grads.insert(grads.end(), g, g + t.dim());
        }
      }
    }
    return grads;
  };
  ThreadPool::SetGlobalThreads(1);
  const std::vector<float> ref = run();
  for (size_t threads : {2u, 8u}) {
    ThreadPool::SetGlobalThreads(threads);
    const std::vector<float> got = run();
    ASSERT_EQ(got.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      EXPECT_EQ(got[i], ref[i]) << threads << " threads, index " << i;
    }
  }
}

// The same scatter contract for the compositional backends: gradient
// shards are keyed on BACKING rows, so QR factor sharing and tiered
// bucket collisions must accumulate bit-identically at any thread count.
void CheckBackendScatterDeterminism(const EmbeddingBackendConfig& backend) {
  const auto& p = SharedTinyData();
  Rng rng(17);
  FeatureEmbedding emb(p.data, 8, 1e-3f, 0.0f, &rng, backend);
  Batch batch = HeadBatch(p, 1024);
  Tensor d_out = RandomTensor({batch.size, emb.output_dim()}, &rng);
  auto run = [&]() {
    emb.ClearGrads();
    Tensor out;
    emb.Forward(batch, &out);
    emb.Backward(d_out);
    // Flatten accumulated grads over the BACKING rows of every table.
    std::vector<float> grads;
    for (size_t f = 0; f < p.data.num_categorical(); ++f) {
      const EmbeddingTable& t = emb.cat_table(f);
      for (size_t row = 0; row < t.BackingRows(); ++row) {
        const float* g = t.AccumulatedGradForRow(static_cast<int32_t>(row));
        if (g == nullptr) {
          grads.insert(grads.end(), t.dim(), 0.0f);
        } else {
          grads.insert(grads.end(), g, g + t.dim());
        }
      }
    }
    return grads;
  };
  ThreadPool::SetGlobalThreads(1);
  const std::vector<float> ref = run();
  for (size_t threads : {2u, 8u}) {
    ThreadPool::SetGlobalThreads(threads);
    const std::vector<float> got = run();
    ASSERT_EQ(got.size(), ref.size());
    for (size_t i = 0; i < ref.size(); ++i) {
      ASSERT_EQ(got[i], ref[i]) << threads << " threads, index " << i;
    }
  }
}

TEST(DeterminismTest, QrSumScatterBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  EmbeddingBackendConfig cfg = EmbeddingBackendConfig::QR();
  cfg.min_vocab = 2;
  CheckBackendScatterDeterminism(cfg);
}

TEST(DeterminismTest, QrMulScatterBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  EmbeddingBackendConfig cfg =
      EmbeddingBackendConfig::QR(0, QrCombine::kMul);
  cfg.min_vocab = 2;
  CheckBackendScatterDeterminism(cfg);
}

TEST(DeterminismTest, TieredScatterBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  EmbeddingBackendConfig cfg = EmbeddingBackendConfig::Tiered();
  cfg.min_vocab = 2;
  CheckBackendScatterDeterminism(cfg);
}

// Flattened trainable state + predictions of a model, for bit-exact
// comparison of whole training runs.
std::vector<float> SnapshotModel(CtrModel* model, const Batch& batch) {
  std::vector<float> snap;
  std::vector<Tensor*> state;
  model->CollectState(&state);
  for (const Tensor* t : state) {
    snap.insert(snap.end(), t->data(), t->data() + t->size());
  }
  std::vector<float> probs;
  model->Predict(batch, &probs);
  snap.insert(snap.end(), probs.begin(), probs.end());
  return snap;
}

void ExpectBitIdentical(const std::vector<float>& got,
                        const std::vector<float>& ref, size_t threads) {
  ASSERT_EQ(got.size(), ref.size());
  size_t mismatches = 0;
  for (size_t i = 0; i < ref.size(); ++i) {
    if (std::memcmp(&got[i], &ref[i], sizeof(float)) != 0) {
      if (++mismatches <= 5) {
        ADD_FAILURE() << threads << " threads: state differs at index " << i
                      << ": " << got[i] << " vs " << ref[i];
      }
    }
  }
  EXPECT_EQ(mismatches, 0u) << threads << " threads";
}

TEST(DeterminismTest, TrainModelBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  const auto& p = SharedTinyData();
  auto run = [&](size_t threads) {
    ThreadPool::SetGlobalThreads(threads);
    FixedArchModel model(p.data, MixedArch(p.data.num_pairs()), TinyHp(),
                         "det");
    TrainOptions opts;
    opts.epochs = 2;
    opts.batch_size = 1024;  // crosses the GEMM / scatter thresholds
    opts.seed = 123;
    TrainModel(&model, p.data, p.splits, opts);
    return SnapshotModel(&model, HeadBatch(p, 256));
  };
  const std::vector<float> ref = run(1);
  ExpectBitIdentical(run(2), ref, 2);
  ExpectBitIdentical(run(8), ref, 8);
}

TEST(DeterminismTest, TrainModelBitIdenticalWithCompressedCrossTables) {
  // Full training runs stay bit-identical across thread counts when the
  // cross tables use QR / tiered storage (DESIGN.md §5 holds per
  // BACKING row, not per logical id).
  PoolGuard guard;
  const auto& p = SharedTinyData();
  for (const auto& backend :
       {EmbeddingBackendConfig::QR(0, QrCombine::kMul),
        EmbeddingBackendConfig::Tiered()}) {
    auto run = [&](size_t threads) {
      ThreadPool::SetGlobalThreads(threads);
      HyperParams hp = TinyHp();
      hp.cross_backend = backend;
      hp.cross_backend.min_vocab = 2;
      FixedArchModel model(p.data, MixedArch(p.data.num_pairs()), hp,
                           "det");
      TrainOptions opts;
      opts.epochs = 1;
      opts.batch_size = 1024;
      opts.seed = 123;
      TrainModel(&model, p.data, p.splits, opts);
      return SnapshotModel(&model, HeadBatch(p, 256));
    };
    const std::vector<float> ref = run(1);
    ExpectBitIdentical(run(2), ref, 2);
    ExpectBitIdentical(run(8), ref, 8);
  }
}

TEST(DeterminismTest, SearchModelBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  const auto& p = SharedTinyData();
  auto run = [&](size_t threads) {
    ThreadPool::SetGlobalThreads(threads);
    SearchModel model(p.data, TinyHp());
    Batch b = HeadBatch(p, 1024);
    for (int i = 0; i < 5; ++i) model.TrainStep(b);
    // Snapshot includes α (via CollectState) and eval-mode logits.
    std::vector<float> snap = SnapshotModel(&model, HeadBatch(p, 256));
    const Tensor& alpha = model.alpha().value;
    snap.insert(snap.end(), alpha.data(), alpha.data() + alpha.size());
    return snap;
  };
  const std::vector<float> ref = run(1);
  ExpectBitIdentical(run(2), ref, 2);
  ExpectBitIdentical(run(8), ref, 8);
}

TEST(DeterminismTest, RunSearchStageBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  const auto& p = SharedTinyData();
  SearchOptions opts;
  opts.search_epochs = 1;
  auto run = [&](size_t threads) {
    ThreadPool::SetGlobalThreads(threads);
    return RunSearchStage(p.data, p.splits, TinyHp(), opts);
  };
  const SearchResult ref = run(1);
  for (size_t threads : {2u, 8u}) {
    const SearchResult got = run(threads);
    EXPECT_TRUE(got.arch == ref.arch) << threads << " threads";
    EXPECT_EQ(got.search_val.auc, ref.search_val.auc);
    EXPECT_EQ(got.search_val.logloss, ref.search_val.logloss);
    EXPECT_EQ(got.search_test.auc, ref.search_test.auc);
    EXPECT_EQ(got.search_test.logloss, ref.search_test.logloss);
  }
}

// ---------------------------------------------------------------------------
// Finite-difference checks of the parallel backward paths
// ---------------------------------------------------------------------------

TEST(GradCheckParallelTest, LinearBackwardAcrossThreadCounts) {
  PoolGuard guard;
  Rng rng(21);
  Linear lin("t", 48, 8, 1e-3f, 0.0f, &rng);
  Tensor x = RandomTensor({8192, 48}, &rng, 0.5);
  Tensor c = RandomTensor({8192, 8}, &rng, 0.5);
  auto compute = [&]() {
    lin.weight.grad.Fill(0.0f);
    lin.bias.grad.Fill(0.0f);
    LinearWorkspace ws;
    Tensor y, dx;
    lin.Forward(x, &y, &ws);
    lin.Backward(c, &dx, ws);
    std::vector<float> g(lin.weight.grad.data(),
                         lin.weight.grad.data() + lin.weight.grad.size());
    return g;
  };
  auto loss = [&]() {
    LinearWorkspace ws;
    Tensor y;
    lin.Forward(x, &y, &ws);
    return WeightedSum(y, c);
  };
  CheckGradientAcrossThreadCounts({1, 2, 8}, compute,
                                  lin.weight.value.data(), /*check_n=*/32,
                                  loss);
}

TEST(GradCheckParallelTest, LayerNormBackwardAcrossThreadCounts) {
  PoolGuard guard;
  Rng rng(22);
  LayerNorm ln("t", 64, 1e-3f, 0.0f);
  for (size_t i = 0; i < 64; ++i) {
    ln.gamma.value[i] = 0.5f + 0.01f * static_cast<float>(i);
    ln.beta.value[i] = 0.02f * static_cast<float>(i);
  }
  Tensor x = RandomTensor({512, 64}, &rng, 2.0);  // 32768 floats → parallel
  Tensor c = RandomTensor({512, 64}, &rng);
  auto compute = [&]() {
    ln.gamma.grad.Fill(0.0f);
    ln.beta.grad.Fill(0.0f);
    LayerNormWorkspace ws;
    Tensor y, dx;
    ln.Forward(x, &y, &ws);
    ln.Backward(c, &dx, ws);
    std::vector<float> g(ln.gamma.grad.data(),
                         ln.gamma.grad.data() + ln.gamma.grad.size());
    g.insert(g.end(), ln.beta.grad.data(),
             ln.beta.grad.data() + ln.beta.grad.size());
    return g;
  };
  auto loss = [&]() {
    LayerNormWorkspace ws;
    Tensor y;
    ln.Forward(x, &y, &ws);
    return WeightedSum(y, c);
  };
  CheckGradientAcrossThreadCounts({1, 2, 8}, compute,
                                  ln.gamma.value.data(), /*check_n=*/32,
                                  loss, 1e-3, 4e-2);
}

TEST(GradCheckParallelTest, EmbeddingScatterAcrossThreadCounts) {
  PoolGuard guard;
  const auto& p = SharedTinyData();
  Rng rng(23);
  FeatureEmbedding emb(p.data, 8, 1e-3f, 0.0f, &rng);
  Batch batch = HeadBatch(p, 1024);
  Tensor c = RandomTensor({batch.size, emb.output_dim()}, &rng);
  EmbeddingTable& table = emb.cat_table(0);
  auto compute = [&]() {
    emb.ClearGrads();
    Tensor out;
    emb.Forward(batch, &out);
    emb.Backward(c);
    // Dense view of table 0's sparse grads, aligned with its values.
    std::vector<float> g(table.vocab_size() * table.dim(), 0.0f);
    for (size_t id = 0; id < table.vocab_size(); ++id) {
      const float* ag = table.AccumulatedGrad(static_cast<int32_t>(id));
      if (ag != nullptr) {
        std::memcpy(g.data() + id * table.dim(), ag,
                    table.dim() * sizeof(float));
      }
    }
    return g;
  };
  auto loss = [&]() {
    Tensor out;
    emb.Gather(batch, &out);
    return WeightedSum(out, c);
  };
  CheckGradientAcrossThreadCounts({1, 2, 8}, compute,
                                  table.mutable_values().data(),
                                  /*check_n=*/24, loss);
}

// Same finite-difference check against the BACKING parameters of a
// compositional table: validates the QR sum/mul chain rules (including
// the mul product rule reading the co-factor row) and tiered bucket
// sharing numerically, at every thread count.
void CheckBackendScatterGradient(const EmbeddingBackendConfig& backend) {
  const auto& p = SharedTinyData();
  Rng rng(23);
  FeatureEmbedding emb(p.data, 8, 1e-3f, 0.0f, &rng, backend);
  Batch batch = HeadBatch(p, 1024);
  Tensor c = RandomTensor({batch.size, emb.output_dim()}, &rng);
  EmbeddingTable& table = emb.cat_table(0);
  auto compute = [&]() {
    emb.ClearGrads();
    Tensor out;
    emb.Forward(batch, &out);
    emb.Backward(c);
    // Dense view of table 0's sparse grads in BACKING space, aligned
    // with its values tensor.
    std::vector<float> g(table.BackingRows() * table.dim(), 0.0f);
    for (size_t row = 0; row < table.BackingRows(); ++row) {
      const float* ag = table.AccumulatedGradForRow(static_cast<int32_t>(row));
      if (ag != nullptr) {
        std::memcpy(g.data() + row * table.dim(), ag,
                    table.dim() * sizeof(float));
      }
    }
    return g;
  };
  auto loss = [&]() {
    Tensor out;
    emb.Gather(batch, &out);
    return WeightedSum(out, c);
  };
  // Tiered backings can be tiny (hot + buckets); cap at the table size.
  const size_t check_n =
      std::min<size_t>(24, table.BackingRows() * table.dim());
  CheckGradientAcrossThreadCounts({1, 2, 8}, compute,
                                  table.mutable_values().data(), check_n,
                                  loss);
}

TEST(GradCheckParallelTest, QrSumScatterAcrossThreadCounts) {
  PoolGuard guard;
  EmbeddingBackendConfig cfg = EmbeddingBackendConfig::QR();
  cfg.min_vocab = 2;
  CheckBackendScatterGradient(cfg);
}

TEST(GradCheckParallelTest, QrMulScatterAcrossThreadCounts) {
  PoolGuard guard;
  EmbeddingBackendConfig cfg =
      EmbeddingBackendConfig::QR(0, QrCombine::kMul);
  cfg.min_vocab = 2;
  CheckBackendScatterGradient(cfg);
}

TEST(GradCheckParallelTest, TieredScatterAcrossThreadCounts) {
  PoolGuard guard;
  EmbeddingBackendConfig cfg = EmbeddingBackendConfig::Tiered();
  cfg.min_vocab = 2;
  CheckBackendScatterGradient(cfg);
}

// ---------------------------------------------------------------------------
// Pipelined executor vs the serial training loop
// ---------------------------------------------------------------------------

// The pipelined TrainModel path must produce bit-for-bit the weights and
// predictions of the serial loop, at every thread count — the executor only
// moves PrepareBatch onto the pool, never the math.
TEST(DeterminismTest, PipelinedTrainModelMatchesSerialAcrossThreadCounts) {
  PoolGuard guard;
  const auto& p = SharedTinyData();
  auto run = [&](size_t threads, bool pipeline) {
    ThreadPool::SetGlobalThreads(threads);
    FixedArchModel model(p.data, MixedArch(p.data.num_pairs()), TinyHp(),
                         "pipe");
    TrainOptions opts;
    opts.epochs = 2;
    opts.batch_size = 1024;  // crosses the GEMM / scatter thresholds
    opts.seed = 123;
    opts.pipeline = pipeline;
    TrainModel(&model, p.data, p.splits, opts);
    return SnapshotModel(&model, HeadBatch(p, 256));
  };
  const std::vector<float> ref = run(1, /*pipeline=*/false);
  for (size_t threads : {1u, 2u, 8u}) {
    ExpectBitIdentical(run(threads, /*pipeline=*/true), ref, threads);
  }
}

// Same contract for the search stage: the Gumbel noise stream is consumed
// inside ForwardBackward in batch order, so pipelining must not move it.
TEST(DeterminismTest, PipelinedSearchStageMatchesSerialAcrossThreadCounts) {
  PoolGuard guard;
  const auto& p = SharedTinyData();
  auto run = [&](size_t threads, bool pipeline) {
    ThreadPool::SetGlobalThreads(threads);
    SearchOptions opts;
    opts.search_epochs = 1;
    opts.pipeline = pipeline;
    return RunSearchStage(p.data, p.splits, TinyHp(), opts);
  };
  const SearchResult ref = run(1, /*pipeline=*/false);
  for (size_t threads : {1u, 2u, 8u}) {
    const SearchResult got = run(threads, /*pipeline=*/true);
    EXPECT_TRUE(got.arch == ref.arch) << threads << " threads";
    EXPECT_EQ(got.search_val.auc, ref.search_val.auc) << threads;
    EXPECT_EQ(got.search_val.logloss, ref.search_val.logloss) << threads;
    EXPECT_EQ(got.search_test.auc, ref.search_test.auc) << threads;
    EXPECT_EQ(got.search_test.logloss, ref.search_test.logloss) << threads;
  }
}

// Pipelined TSan workload: prefetched PrepareBatch tasks overlap the
// compute thread's ForwardBackward/ApplyGrads (plus the nested parallel
// kernels) for a full search epoch on a multi-thread pool.
TEST(ConcurrencyTest, PipelinedSearchEpochRunsUnderThreads) {
  PoolGuard guard;
  ThreadPool::SetGlobalThreads(4);
  const auto& p = SharedTinyData();
  SearchModel model(p.data, TinyHp());
  Batcher batcher(&p.data, p.splits.train, /*batch_size=*/512, /*seed=*/9);
  PipelinedTrainExecutor executor(&model);
  batcher.StartEpoch();
  const PipelinedTrainExecutor::EpochStats stats = executor.RunEpoch(&batcher);
  EXPECT_EQ(stats.rows, p.splits.train.size());
  EXPECT_GT(stats.batches, 1u);
  EXPECT_EQ(executor.steps_done(), stats.batches);
}

// ---------------------------------------------------------------------------
// Parallel AUC and elementwise forward paths
// ---------------------------------------------------------------------------

// Heavy ties + a size past the parallel-sort threshold: the (score, index)
// total order makes the parallel merge sort reproduce the serial
// permutation exactly, so the AUC must match bit for bit.
TEST(DeterminismTest, AucParallelBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  Rng rng(5);
  const size_t n = (1u << 16) + 331;
  std::vector<float> scores(n), labels(n);
  for (size_t i = 0; i < n; ++i) {
    scores[i] =
        static_cast<float>(static_cast<int>(rng.Uniform(0.0, 64.0))) / 64.0f;
    labels[i] = rng.Uniform(0.0, 1.0) < 0.3 ? 1.0f : 0.0f;
  }
  const double serial = internal::AucSerial(scores, labels);
  for (size_t threads : {1u, 2u, 8u}) {
    ThreadPool::SetGlobalThreads(threads);
    EXPECT_EQ(Auc(scores, labels), serial) << threads << " threads";
  }
}

TEST(DeterminismTest, SigmoidForwardBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  Rng rng(31);
  const size_t n = (1u << 16) + 17;  // crosses kParallelElems
  std::vector<float> z(n), ref(n), got(n);
  for (float& v : z) v = static_cast<float>(rng.Uniform(-8.0, 8.0));
  ThreadPool::SetGlobalThreads(1);
  SigmoidForward(z.data(), n, ref.data());
  for (size_t threads : {2u, 8u}) {
    ThreadPool::SetGlobalThreads(threads);
    SigmoidForward(z.data(), n, got.data());
    EXPECT_EQ(std::memcmp(got.data(), ref.data(), n * sizeof(float)), 0)
        << threads << " threads";
  }
}

// ---------------------------------------------------------------------------
// Bitwise thread-count invariance of the SIMD kernel layer (tensor/kernels):
// every kernel that fans out under pool-size-dependent chunking must produce
// identical bits at 1, 2, and 8 threads within a build. GEMM shapes are
// chosen above the kParallelFlops threshold with odd edges so partial
// micro-tiles and panels sit on chunk boundaries.
// ---------------------------------------------------------------------------

template <typename Fn>
void ExpectKernelBitInvariant(size_t out_size, Fn&& run) {
  PoolGuard guard;
  ThreadPool::SetGlobalThreads(1);
  std::vector<float> ref(out_size);
  run(ref.data());
  for (size_t threads : {2u, 8u}) {
    ThreadPool::SetGlobalThreads(threads);
    std::vector<float> got(out_size);
    run(got.data());
    EXPECT_EQ(
        std::memcmp(got.data(), ref.data(), out_size * sizeof(float)), 0)
        << threads << " threads";
  }
}

TEST(DeterminismTest, GemmNNBitIdenticalAcrossThreadCounts) {
  Rng rng(41);
  const size_t m = 517, k = 129, n = 67;  // m·k·n > 2^21 → parallel path
  std::vector<float> a(m * k), b(k * n);
  for (float& v : a) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  for (float& v : b) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  ExpectKernelBitInvariant(m * n, [&](float* c) {
    GemmNN(a.data(), b.data(), c, m, k, n, 0.5f, 0.0f);
  });
}

TEST(DeterminismTest, GemmNTBitIdenticalAcrossThreadCounts) {
  Rng rng(42);
  const size_t m = 517, k = 129, n = 67;
  std::vector<float> a(m * k), b(n * k);
  for (float& v : a) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  for (float& v : b) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  ExpectKernelBitInvariant(m * n, [&](float* c) {
    GemmNT(a.data(), b.data(), c, m, k, n, 1.0f, 0.0f);
  });
}

TEST(DeterminismTest, GemmTNBitIdenticalAcrossThreadCounts) {
  Rng rng(43);
  const size_t m = 1031, k = 65, n = 33;
  std::vector<float> a(m * k), b(m * n);
  for (float& v : a) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  for (float& v : b) v = static_cast<float>(rng.Uniform(-1.0, 1.0));
  ExpectKernelBitInvariant(k * n, [&](float* c) {
    GemmTN(a.data(), b.data(), c, m, k, n, 1.0f, 0.0f);
  });
}

TEST(DeterminismTest, ReluForwardBackwardBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  Rng rng(44);
  const size_t n = (1u << 16) + 13;  // crosses kParallelElems, odd tail
  Tensor x({n});
  for (size_t i = 0; i < n; ++i) {
    x[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  Tensor dy({n});
  for (size_t i = 0; i < n; ++i) {
    dy[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  Relu relu;
  ThreadPool::SetGlobalThreads(1);
  Tensor y_ref, dx_ref;
  {
    ReluWorkspace ws;
    relu.Forward(x, &y_ref, &ws);
    relu.Backward(dy, &dx_ref, ws);
  }
  for (size_t threads : {2u, 8u}) {
    ThreadPool::SetGlobalThreads(threads);
    ReluWorkspace ws;
    Tensor y, dx;
    relu.Forward(x, &y, &ws);
    relu.Backward(dy, &dx, ws);
    EXPECT_EQ(std::memcmp(y.data(), y_ref.data(), n * sizeof(float)), 0)
        << "forward, " << threads << " threads";
    EXPECT_EQ(std::memcmp(dx.data(), dx_ref.data(), n * sizeof(float)), 0)
        << "backward, " << threads << " threads";
  }
}

// One optimizer step on a parameter big enough to fan out, with an odd tail
// so vector-group boundaries move with the chunking.
template <typename MakeOpt>
std::vector<float> DenseOptimizerResult(size_t threads, MakeOpt&& make_opt) {
  ThreadPool::SetGlobalThreads(threads);
  Rng rng(45);
  DenseParam p;
  p.Resize({(1u << 15) + 29});
  p.lr = 1e-2f;
  p.l2 = 1e-4f;
  for (size_t i = 0; i < p.size(); ++i) {
    p.value[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
    p.grad[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  auto opt = make_opt();
  opt->AddParam(&p);
  opt->Step();
  return std::vector<float>(p.value.data(), p.value.data() + p.size());
}

TEST(DeterminismTest, DenseSgdStepBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  auto make = [] { return std::make_unique<Sgd>(); };
  const std::vector<float> ref = DenseOptimizerResult(1, make);
  ExpectBitIdentical(DenseOptimizerResult(2, make), ref, 2);
  ExpectBitIdentical(DenseOptimizerResult(8, make), ref, 8);
}

TEST(DeterminismTest, DenseAdamStepBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  auto make = [] { return std::make_unique<Adam>(); };
  const std::vector<float> ref = DenseOptimizerResult(1, make);
  ExpectBitIdentical(DenseOptimizerResult(2, make), ref, 2);
  ExpectBitIdentical(DenseOptimizerResult(8, make), ref, 8);
}

TEST(DeterminismTest, LayerNormForwardBackwardBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  Rng rng(46);
  const size_t batch = 1037, dim = 37;  // odd dim → scalar row tails
  LayerNorm ln("ln", dim, 1e-3f, 0.0f);
  Tensor x = RandomTensor({batch, dim}, &rng, 1.0);
  Tensor dy = RandomTensor({batch, dim}, &rng, 1.0);
  ThreadPool::SetGlobalThreads(1);
  Tensor y_ref, dx_ref;
  std::vector<float> dg_ref, db_ref;
  {
    LayerNormWorkspace ws;
    ln.Forward(x, &y_ref, &ws);
    ln.gamma.ZeroGrad();
    ln.beta.ZeroGrad();
    ln.Backward(dy, &dx_ref, ws);
    dg_ref.assign(ln.gamma.grad.data(), ln.gamma.grad.data() + dim);
    db_ref.assign(ln.beta.grad.data(), ln.beta.grad.data() + dim);
  }
  for (size_t threads : {2u, 8u}) {
    ThreadPool::SetGlobalThreads(threads);
    LayerNormWorkspace ws;
    Tensor y, dx;
    ln.Forward(x, &y, &ws);
    ln.gamma.ZeroGrad();
    ln.beta.ZeroGrad();
    ln.Backward(dy, &dx, ws);
    EXPECT_EQ(
        std::memcmp(y.data(), y_ref.data(), y.size() * sizeof(float)), 0)
        << "forward, " << threads << " threads";
    EXPECT_EQ(
        std::memcmp(dx.data(), dx_ref.data(), dx.size() * sizeof(float)), 0)
        << "backward dx, " << threads << " threads";
    EXPECT_EQ(std::memcmp(ln.gamma.grad.data(), dg_ref.data(),
                          dim * sizeof(float)), 0)
        << "dgamma, " << threads << " threads";
    EXPECT_EQ(std::memcmp(ln.beta.grad.data(), db_ref.data(),
                          dim * sizeof(float)), 0)
        << "dbeta, " << threads << " threads";
  }
}

TEST(DeterminismTest, LinearForwardBiasAddBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  Rng rng(12);
  Linear lin("bias", 16, 8, 1e-3f, 0.0f, &rng);
  for (size_t i = 0; i < lin.bias.value.size(); ++i) {
    lin.bias.value[i] = static_cast<float>(rng.Uniform(-1.0, 1.0));
  }
  Tensor x = RandomTensor({8192, 16}, &rng, 0.5);  // 8192×8 out → parallel
  ThreadPool::SetGlobalThreads(1);
  Tensor ref;
  {
    LinearWorkspace ws;
    lin.Forward(x, &ref, &ws);
  }
  for (size_t threads : {2u, 8u}) {
    ThreadPool::SetGlobalThreads(threads);
    LinearWorkspace ws;
    Tensor y;
    lin.Forward(x, &y, &ws);
    ASSERT_EQ(y.size(), ref.size());
    EXPECT_EQ(std::memcmp(y.data(), ref.data(), y.size() * sizeof(float)), 0)
        << threads << " threads";
  }
}

// ---------------------------------------------------------------------------
// Streamed training determinism: the out-of-core path must be bitwise
// identical to in-RAM training at every thread count and prefetch depth.
// ---------------------------------------------------------------------------

// The shared tiny dataset written once as a shard directory.
const std::string& TinyShardDir() {
  // Per-process path: ctest runs each TEST as its own process, and a shared
  // directory would let one process remove_all() shards another has mmapped.
  static const std::string* dir = [] {
    auto* d = new std::string(::testing::TempDir() + "/concurrency_shards." +
                              std::to_string(::getpid()));
    std::filesystem::remove_all(*d);
    std::filesystem::create_directories(*d);
    CHECK_OK(WriteShardedDataset(SharedTinyData().data, *d, 512));
    return d;
  }();
  return *dir;
}

// Contiguous 0.7/0.15/0.15 splits — the streaming trainer's convention.
Splits ContiguousSplits(size_t n) {
  const size_t train_end =
      std::max<size_t>(1, static_cast<size_t>(n * 0.7));
  const size_t val_end =
      std::min(n, train_end + static_cast<size_t>(n * 0.15));
  Splits s;
  for (size_t r = 0; r < train_end; ++r) s.train.push_back(r);
  for (size_t r = train_end; r < val_end; ++r) s.val.push_back(r);
  for (size_t r = val_end; r < n; ++r) s.test.push_back(r);
  return s;
}

void ExpectSummariesBitIdentical(const TrainSummary& got,
                                 const TrainSummary& ref) {
  EXPECT_EQ(got.epochs_run, ref.epochs_run);
  EXPECT_EQ(got.epoch_train_losses, ref.epoch_train_losses);
  EXPECT_EQ(got.epoch_val_aucs, ref.epoch_val_aucs);
  EXPECT_EQ(got.final_val.auc, ref.final_val.auc);
  EXPECT_EQ(got.final_val.logloss, ref.final_val.logloss);
  EXPECT_EQ(got.final_test.auc, ref.final_test.auc);
  EXPECT_EQ(got.final_test.logloss, ref.final_test.logloss);
}

// Streamed training with kGlobalShuffle vs the ordinary in-RAM TrainModel
// over the same contiguous splits: identical epoch order, identical
// metrics and weights, at 1/2/8 threads and every prefetch depth.
TEST(DeterminismTest, StreamedTrainMatchesInRamTrainModelAcrossThreads) {
  PoolGuard guard;
  const auto& p = SharedTinyData();
  const Architecture arch = MixedArch(p.data.num_pairs());

  ThreadPool::SetGlobalThreads(1);
  FixedArchModel ref_model(p.data, arch, TinyHp(), "ref");
  TrainOptions topts;
  topts.epochs = 2;
  topts.batch_size = 512;
  topts.seed = 123;
  topts.patience = 1;
  const TrainSummary ref = TrainModel(&ref_model, p.data,
                                      ContiguousSplits(p.data.num_rows),
                                      topts);
  const std::vector<float> ref_snap =
      SnapshotModel(&ref_model, HeadBatch(p, 256));

  auto reader = StreamingReader::Open(TinyShardDir());
  ASSERT_TRUE(reader.ok()) << reader.status().ToString();
  for (const size_t threads : {1u, 2u, 8u}) {
    for (const size_t prefetch : {1u, 2u, 4u}) {
      ThreadPool::SetGlobalThreads(threads);
      FixedArchModel model((*reader)->meta(), arch, TinyHp(), "streamed");
      StreamTrainOptions so;
      so.epochs = 2;
      so.batch_size = 512;
      so.seed = 123;
      so.patience = 1;
      so.order = StreamingBatcher::Order::kGlobalShuffle;
      so.prefetch_batches = prefetch;
      auto got = TrainModelStreamed(&model, reader->get(), so);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectSummariesBitIdentical(*got, ref);
      ExpectBitIdentical(SnapshotModel(&model, HeadBatch(p, 256)), ref_snap,
                         threads);
    }
  }
}

// kWindowShuffle has no in-RAM TrainModel twin, so its contract is pinned
// against the RAM-backed control arm: same order generation, different
// data path, bitwise-equal results at every thread count/prefetch depth.
TEST(DeterminismTest, WindowShuffleStreamedMatchesRamControlArm) {
  PoolGuard guard;
  const auto& p = SharedTinyData();
  const Architecture arch = MixedArch(p.data.num_pairs());
  StreamTrainOptions so;
  so.epochs = 2;
  so.batch_size = 256;
  so.seed = 321;
  so.patience = 1;
  so.order = StreamingBatcher::Order::kWindowShuffle;
  so.window_blocks = 3;
  so.block_rows = 512;  // = the shard size the reader arm resolves to

  ThreadPool::SetGlobalThreads(1);
  FixedArchModel ref_model(p.data, arch, TinyHp(), "ram-arm");
  auto ref = TrainModelStreamed(&ref_model, p.data, so);
  ASSERT_TRUE(ref.ok()) << ref.status().ToString();
  const std::vector<float> ref_snap =
      SnapshotModel(&ref_model, HeadBatch(p, 256));

  auto reader = StreamingReader::Open(TinyShardDir());
  ASSERT_TRUE(reader.ok());
  for (const size_t threads : {1u, 2u, 8u}) {
    for (const size_t prefetch : {1u, 4u}) {
      ThreadPool::SetGlobalThreads(threads);
      FixedArchModel model((*reader)->meta(), arch, TinyHp(), "stream-arm");
      StreamTrainOptions run = so;
      run.prefetch_batches = prefetch;
      auto got = TrainModelStreamed(&model, reader->get(), run);
      ASSERT_TRUE(got.ok()) << got.status().ToString();
      ExpectSummariesBitIdentical(*got, *ref);
      ExpectBitIdentical(SnapshotModel(&model, HeadBatch(p, 256)), ref_snap,
                         threads);
    }
  }
}

// Streamed evaluation must reproduce EvaluateModel over the same rows of
// the materialized dataset bitwise, including under a multi-thread pool
// (EvaluateModel's parallel path is itself bit-identical to serial).
TEST(DeterminismTest, StreamedEvalMatchesInRamEvalAcrossThreads) {
  PoolGuard guard;
  const auto& p = SharedTinyData();
  FixedArchModel model(p.data, MixedArch(p.data.num_pairs()), TinyHp(),
                       "eval");
  auto reader = StreamingReader::Open(TinyShardDir());
  ASSERT_TRUE(reader.ok());
  const size_t begin = 4000;
  const size_t end = p.data.num_rows;
  std::vector<size_t> rows;
  for (size_t r = begin; r < end; ++r) rows.push_back(r);
  for (const size_t threads : {1u, 8u}) {
    ThreadPool::SetGlobalThreads(threads);
    const EvalMetrics in_ram = EvaluateModel(&model, p.data, rows);
    auto streamed =
        EvaluateModelStreamed(&model, reader->get(), begin, end);
    ASSERT_TRUE(streamed.ok()) << streamed.status().ToString();
    EXPECT_EQ(streamed->auc, in_ram.auc);
    EXPECT_EQ(streamed->logloss, in_ram.logloss);
  }
}

}  // namespace
}  // namespace optinter
