#include <gtest/gtest.h>

#include "core/zoo.h"
#include "test_data.h"
#include "train/trainer.h"

namespace optinter {
namespace {

using testing::SharedTinyData;

HyperParams TinyHp() {
  HyperParams hp = DefaultHyperParams("tiny");
  hp.seed = 17;
  return hp;
}

TEST(TrainerTest, RecordsPerEpochStats) {
  const auto& p = SharedTinyData();
  auto model = CreateBaseline("FNN", p.data, TinyHp());
  ASSERT_TRUE(model.ok());
  TrainOptions opts;
  opts.epochs = 2;
  opts.batch_size = 512;
  opts.patience = 0;
  TrainSummary s = TrainModel(model->get(), p.data, p.splits, opts);
  EXPECT_EQ(s.epochs_run, 2u);
  EXPECT_EQ(s.epoch_train_losses.size(), 2u);
  EXPECT_EQ(s.epoch_val_aucs.size(), 2u);
  EXPECT_GT(s.seconds, 0.0);
  EXPECT_GT(s.final_test.auc, 0.0);
  EXPECT_GT(s.final_test.logloss, 0.0);
}

TEST(TrainerTest, TrainingLossImprovesAcrossEpochs) {
  const auto& p = SharedTinyData();
  auto model = CreateBaseline("OptInter-M", p.data, TinyHp());
  ASSERT_TRUE(model.ok());
  TrainOptions opts;
  opts.epochs = 3;
  opts.batch_size = 256;
  opts.patience = 0;
  TrainSummary s = TrainModel(model->get(), p.data, p.splits, opts);
  EXPECT_LT(s.epoch_train_losses.back(), s.epoch_train_losses.front());
}

TEST(TrainerTest, EarlyStoppingCapsEpochs) {
  // With a zero learning rate the validation AUC cannot improve, so
  // patience=1 must stop training after the second epoch.
  // (FNN rather than LR: the zoo gives shallow models their own larger
  // learning rate, which would override the zero here.)
  const auto& p = SharedTinyData();
  HyperParams hp = TinyHp();
  hp.lr_orig = 0.0f;
  hp.lr_cross = 0.0f;
  auto model = CreateBaseline("FNN", p.data, hp);
  ASSERT_TRUE(model.ok());
  TrainOptions opts;
  opts.epochs = 30;
  opts.batch_size = 512;
  opts.patience = 1;
  TrainSummary s = TrainModel(model->get(), p.data, p.splits, opts);
  EXPECT_EQ(s.epochs_run, 2u);
}

TEST(TrainerTest, NoValSplitStillTrains) {
  const auto& p = SharedTinyData();
  auto model = CreateBaseline("FM", p.data, TinyHp());
  ASSERT_TRUE(model.ok());
  Splits splits = p.splits;
  splits.val.clear();
  TrainOptions opts;
  opts.epochs = 1;
  opts.batch_size = 512;
  TrainSummary s = TrainModel(model->get(), p.data, splits, opts);
  EXPECT_EQ(s.epochs_run, 1u);
  EXPECT_TRUE(s.epoch_val_aucs.empty());
  EXPECT_GT(s.final_test.auc, 0.0);
}

TEST(TrainerTest, EvaluateBatchingInvariant) {
  // Metrics must not depend on the evaluation batch size.
  const auto& p = SharedTinyData();
  auto model = CreateBaseline("FNN", p.data, TinyHp());
  ASSERT_TRUE(model.ok());
  EvalMetrics big = EvaluateModel(model->get(), p.data, p.splits.test, 4096);
  EvalMetrics small = EvaluateModel(model->get(), p.data, p.splits.test, 77);
  EXPECT_NEAR(big.auc, small.auc, 1e-12);
  EXPECT_NEAR(big.logloss, small.logloss, 1e-12);
}

}  // namespace
}  // namespace optinter
