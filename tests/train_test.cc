#include <gtest/gtest.h>

#include <algorithm>

#include "core/zoo.h"
#include "test_data.h"
#include "train/trainer.h"

namespace optinter {
namespace {

using testing::SharedTinyData;

HyperParams TinyHp() {
  HyperParams hp = DefaultHyperParams("tiny");
  hp.seed = 17;
  return hp;
}

TEST(TrainerTest, RecordsPerEpochStats) {
  const auto& p = SharedTinyData();
  auto model = CreateBaseline("FNN", p.data, TinyHp());
  ASSERT_TRUE(model.ok());
  TrainOptions opts;
  opts.epochs = 2;
  opts.batch_size = 512;
  opts.patience = 0;
  TrainSummary s = TrainModel(model->get(), p.data, p.splits, opts);
  EXPECT_EQ(s.epochs_run, 2u);
  EXPECT_EQ(s.epoch_train_losses.size(), 2u);
  EXPECT_EQ(s.epoch_val_aucs.size(), 2u);
  EXPECT_GT(s.seconds, 0.0);
  EXPECT_GT(s.final_test.auc, 0.0);
  EXPECT_GT(s.final_test.logloss, 0.0);
}

TEST(TrainerTest, TrainingLossImprovesAcrossEpochs) {
  const auto& p = SharedTinyData();
  auto model = CreateBaseline("OptInter-M", p.data, TinyHp());
  ASSERT_TRUE(model.ok());
  TrainOptions opts;
  opts.epochs = 3;
  opts.batch_size = 256;
  opts.patience = 0;
  TrainSummary s = TrainModel(model->get(), p.data, p.splits, opts);
  EXPECT_LT(s.epoch_train_losses.back(), s.epoch_train_losses.front());
}

TEST(TrainerTest, EarlyStoppingCapsEpochs) {
  // With a zero learning rate the validation AUC cannot improve, so
  // patience=1 must stop training after the second epoch.
  // (FNN rather than LR: the zoo gives shallow models their own larger
  // learning rate, which would override the zero here.)
  const auto& p = SharedTinyData();
  HyperParams hp = TinyHp();
  hp.lr_orig = 0.0f;
  hp.lr_cross = 0.0f;
  auto model = CreateBaseline("FNN", p.data, hp);
  ASSERT_TRUE(model.ok());
  TrainOptions opts;
  opts.epochs = 30;
  opts.batch_size = 512;
  opts.patience = 1;
  TrainSummary s = TrainModel(model->get(), p.data, p.splits, opts);
  EXPECT_EQ(s.epochs_run, 2u);
}

TEST(TrainerTest, NoValSplitStillTrains) {
  const auto& p = SharedTinyData();
  auto model = CreateBaseline("FM", p.data, TinyHp());
  ASSERT_TRUE(model.ok());
  Splits splits = p.splits;
  splits.val.clear();
  TrainOptions opts;
  opts.epochs = 1;
  opts.batch_size = 512;
  TrainSummary s = TrainModel(model->get(), p.data, splits, opts);
  EXPECT_EQ(s.epochs_run, 1u);
  EXPECT_TRUE(s.epoch_val_aucs.empty());
  EXPECT_GT(s.final_test.auc, 0.0);
}

TEST(TrainerTest, EvaluateBatchingInvariant) {
  // Metrics must not depend on the evaluation batch size.
  const auto& p = SharedTinyData();
  auto model = CreateBaseline("FNN", p.data, TinyHp());
  ASSERT_TRUE(model.ok());
  EvalMetrics big = EvaluateModel(model->get(), p.data, p.splits.test, 4096);
  EvalMetrics small = EvaluateModel(model->get(), p.data, p.splits.test, 77);
  EXPECT_NEAR(big.auc, small.auc, 1e-12);
  EXPECT_NEAR(big.logloss, small.logloss, 1e-12);
}

TEST(TrainerTest, EvaluateParallelBitIdenticalToSerial) {
  // The parallel path (pool-fanned label gather + preallocated stitching,
  // row-parallel kernels inside Predict) must be bit-identical to the
  // serial reference: disjoint writes, no float reassociation.
  const auto& p = SharedTinyData();
  auto model = CreateBaseline("OptInter-M", p.data, TinyHp());
  ASSERT_TRUE(model.ok());
  TrainOptions topts;
  topts.epochs = 1;
  TrainModel(model->get(), p.data, p.splits, topts);
  EvalOptions serial;
  serial.parallel = false;
  EvalOptions parallel;
  parallel.parallel = true;
  const EvalMetrics a =
      EvaluateModel(model->get(), p.data, p.splits.test, serial);
  const EvalMetrics b =
      EvaluateModel(model->get(), p.data, p.splits.test, parallel);
  EXPECT_EQ(a.auc, b.auc);
  EXPECT_EQ(a.logloss, b.logloss);
}

TEST(TrainerTest, ScoreImprovedToleranceIsMetricAware) {
  // Sub-1e-6 AUC gains are genuine on large validation sets and must not
  // count as stale epochs; the seed used one absolute 1e-6 for both
  // metrics.
  const double best = 0.75;
  EXPECT_TRUE(ScoreImproved(best + 5e-7, best, StopMetric::kAuc));
  EXPECT_FALSE(ScoreImproved(best + 1e-10, best, StopMetric::kAuc));
  EXPECT_FALSE(ScoreImproved(best, best, StopMetric::kAuc));
  // Log loss keeps the coarser noise floor.
  EXPECT_FALSE(ScoreImproved(best + 5e-7, best, StopMetric::kLogLoss));
  EXPECT_TRUE(ScoreImproved(best + 1e-5, best, StopMetric::kLogLoss));
}

TEST(TrainerTest, RestoresBestEpochSnapshot) {
  // Train past the best epoch and verify the final weights are the best
  // epoch's snapshot: the re-evaluated final_val must equal the best
  // epoch's recorded validation metrics, not the last epoch's.
  const auto& p = SharedTinyData();
  auto model = CreateBaseline("OptInter-M", p.data, TinyHp());
  ASSERT_TRUE(model.ok());
  TrainOptions opts;
  opts.epochs = 6;
  opts.batch_size = 256;
  opts.patience = 0;  // never stop early: guarantees post-best epochs run
  opts.stop_metric = StopMetric::kAuc;
  TrainSummary s = TrainModel(model->get(), p.data, p.splits, opts);
  ASSERT_EQ(s.epoch_val_aucs.size(), s.epochs_run);
  double best_auc = -1.0;
  for (const double auc : s.epoch_val_aucs) best_auc = std::max(best_auc, auc);
  ASSERT_TRUE(s.telemetry.restored_best_snapshot);
  ASSERT_LT(s.telemetry.best_epoch, s.epoch_val_aucs.size());
  // Same weights + same rows + deterministic eval ⇒ the re-evaluation after
  // the restore reproduces the snapshot epoch's recorded metrics exactly.
  EXPECT_DOUBLE_EQ(s.final_val.auc,
                   s.epoch_val_aucs[s.telemetry.best_epoch]);
  // And the snapshot epoch is the best one (up to the improvement
  // tolerance that gates snapshot refreshes).
  EXPECT_GE(s.final_val.auc + 1e-9, best_auc);
}

TEST(TrainerTest, TelemetryRecordsEpochTimings) {
  const auto& p = SharedTinyData();
  auto model = CreateBaseline("FNN", p.data, TinyHp());
  ASSERT_TRUE(model.ok());
  TrainOptions opts;
  opts.epochs = 2;
  opts.patience = 0;
  TrainSummary s = TrainModel(model->get(), p.data, p.splits, opts);
  ASSERT_EQ(s.telemetry.epochs.size(), s.epochs_run);
  for (size_t e = 0; e < s.telemetry.epochs.size(); ++e) {
    const EpochTelemetry& et = s.telemetry.epochs[e];
    EXPECT_EQ(et.epoch, e);
    EXPECT_GT(et.train_seconds, 0.0);
    EXPECT_GT(et.eval_seconds, 0.0);
    EXPECT_GT(et.train_rows_per_sec, 0.0);
    EXPECT_EQ(et.mean_train_loss, s.epoch_train_losses[e]);
  }
  EXPECT_GT(s.telemetry.train_seconds_total, 0.0);
  EXPECT_GT(s.telemetry.eval_seconds_total, 0.0);
  EXPECT_GT(s.telemetry.train_rows_per_sec, 0.0);
  EXPECT_FALSE(s.telemetry.early_stopped);
  EXPECT_LE(s.telemetry.train_seconds_total + s.telemetry.eval_seconds_total,
            s.seconds + 1e-9);
}

TEST(TrainerTest, TelemetryMarksEarlyStop) {
  const auto& p = SharedTinyData();
  HyperParams hp = TinyHp();
  hp.lr_orig = 0.0f;
  hp.lr_cross = 0.0f;
  auto model = CreateBaseline("FNN", p.data, hp);
  ASSERT_TRUE(model.ok());
  TrainOptions opts;
  opts.epochs = 30;
  opts.patience = 1;
  TrainSummary s = TrainModel(model->get(), p.data, p.splits, opts);
  EXPECT_TRUE(s.telemetry.early_stopped);
  EXPECT_EQ(s.telemetry.epochs.size(), s.epochs_run);
}

}  // namespace
}  // namespace optinter
