// Embedding storage backends (DESIGN.md §12): QR-compositional and
// frequency-tiered tables.
//
// Covers the backend contracts the rest of the substrate leans on:
//  - QR layout arithmetic and row composition (sum and mul combiners),
//  - QR gradient semantics under quotient/remainder row sharing,
//  - tiered hot-id placement, cold-bucket hashing, and collision
//    semantics (colliding cold ids genuinely share one trainable row),
//  - tier-plan resolution precedence (explicit ids > dataset metadata >
//    the 1..K fallback) and the min-vocab dense fallback,
//  - actionable CHECK failures on bad ids / wrong-backend access,
//  - prepared-path vs legacy-path bit parity for both backends,
//  - checkpoint -> reload -> quantize round trips with compressed
//    cross tables.

#include <gtest/gtest.h>

#include <cstdio>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "core/fixed_arch_model.h"
#include "data/hash_encoder.h"
#include "io/serialize.h"
#include "models/backend_resolve.h"
#include "models/feature_embedding.h"
#include "models/forward_context.h"
#include "models/prepared_batch.h"
#include "nn/embedding.h"
#include "serve/snapshot.h"
#include "test_data.h"

namespace optinter {
namespace {

using serve::QuantizeSnapshot;
using testing::HeadBatch;
using testing::SharedTinyData;

// ---------------------------------------------------------------------------
// QR layout + composition
// ---------------------------------------------------------------------------

TEST(QrBackendTest, DefaultRemainderIsCeilSqrt) {
  EmbeddingTable t("t", 100, 4, 1e-3f, 0.0f, EmbeddingBackendConfig::QR());
  EXPECT_EQ(t.qr_rem(), 10u);    // ceil(sqrt(100))
  EXPECT_EQ(t.qr_num_q(), 10u);  // ceil(100 / 10)
  EXPECT_EQ(t.BackingRows(), 20u);
  EXPECT_EQ(t.ParamCount(), 20u * 4u);
  EXPECT_EQ(t.BackendDesc(), "qr_sum(q=10,r=10)");
}

TEST(QrBackendTest, RemainderClampedToVocab) {
  EmbeddingTable t("t", 5, 2, 1e-3f, 0.0f, EmbeddingBackendConfig::QR(64));
  EXPECT_LE(t.qr_rem(), 5u);
  // Every id must still map to valid, distinct (primary, secondary) rows.
  for (int32_t id = 0; id < 5; ++id) {
    EXPECT_LT(static_cast<size_t>(t.PrimaryRowOf(id)), t.qr_num_q());
    EXPECT_GE(static_cast<size_t>(t.SecondaryRowOf(id)), t.qr_num_q());
    EXPECT_LT(static_cast<size_t>(t.SecondaryRowOf(id)), t.BackingRows());
  }
}

TEST(QrBackendTest, SumCombinerComposesRows) {
  Rng rng(11);
  EmbeddingTable t("t", 30, 4, 1e-3f, 0.0f, EmbeddingBackendConfig::QR());
  t.Init(&rng);
  const size_t rem = t.qr_rem();
  for (int32_t id : {0, 1, 7, 29}) {
    const float* q = t.values().row(static_cast<size_t>(id) / rem);
    const float* r =
        t.values().row(t.qr_num_q() + static_cast<size_t>(id) % rem);
    float dst[4];
    t.CopyRow(id, dst);
    for (size_t k = 0; k < 4; ++k) EXPECT_EQ(dst[k], q[k] + r[k]) << id;
  }
}

TEST(QrBackendTest, MulCombinerComposesRows) {
  Rng rng(12);
  EmbeddingTable t("t", 30, 4, 1e-3f, 0.0f,
                   EmbeddingBackendConfig::QR(0, QrCombine::kMul));
  t.Init(&rng);
  const size_t rem = t.qr_rem();
  for (int32_t id : {0, 3, 17, 29}) {
    const float* q = t.values().row(static_cast<size_t>(id) / rem);
    const float* r =
        t.values().row(t.qr_num_q() + static_cast<size_t>(id) % rem);
    float dst[4];
    t.CopyRow(id, dst);
    for (size_t k = 0; k < 4; ++k) EXPECT_EQ(dst[k], q[k] * r[k]) << id;
  }
}

TEST(QrBackendTest, QuotientSharingIdsAccumulateIntoOneSlot) {
  EmbeddingTable t("t", 100, 2, 1e-3f, 0.0f, EmbeddingBackendConfig::QR());
  // rem = 10: ids 20 and 25 share quotient row 2, distinct remainders.
  ASSERT_EQ(t.PrimaryRowOf(20), t.PrimaryRowOf(25));
  ASSERT_NE(t.SecondaryRowOf(20), t.SecondaryRowOf(25));
  const float g1[2] = {1.0f, 2.0f};
  const float g2[2] = {10.0f, 20.0f};
  t.AccumulateGrad(20, g1);
  t.AccumulateGrad(25, g2);
  const float* prim = t.AccumulatedGradForRow(t.PrimaryRowOf(20));
  ASSERT_NE(prim, nullptr);
  EXPECT_EQ(prim[0], 11.0f);
  EXPECT_EQ(prim[1], 22.0f);
  const float* sec20 = t.AccumulatedGradForRow(t.SecondaryRowOf(20));
  ASSERT_NE(sec20, nullptr);
  EXPECT_EQ(sec20[0], 1.0f);
  const float* sec25 = t.AccumulatedGradForRow(t.SecondaryRowOf(25));
  ASSERT_NE(sec25, nullptr);
  EXPECT_EQ(sec25[0], 10.0f);
}

TEST(QrBackendTest, MulCombinerGradientIsProductRule) {
  Rng rng(13);
  EmbeddingTable t("t", 30, 2, 1e-3f, 0.0f,
                   EmbeddingBackendConfig::QR(0, QrCombine::kMul));
  t.Init(&rng);
  const int32_t id = 8;
  float q[2], r[2];
  std::memcpy(q, t.values().row(static_cast<size_t>(t.PrimaryRowOf(id))),
              sizeof(q));
  std::memcpy(r, t.values().row(static_cast<size_t>(t.SecondaryRowOf(id))),
              sizeof(r));
  const float g[2] = {0.5f, -2.0f};
  t.AccumulateGrad(id, g);
  // d(q ⊙ r)/dq = g ⊙ r,  d/dr = g ⊙ q.
  const float* gq = t.AccumulatedGradForRow(t.PrimaryRowOf(id));
  const float* gr = t.AccumulatedGradForRow(t.SecondaryRowOf(id));
  ASSERT_NE(gq, nullptr);
  ASSERT_NE(gr, nullptr);
  for (size_t k = 0; k < 2; ++k) {
    EXPECT_EQ(gq[k], g[k] * r[k]);
    EXPECT_EQ(gr[k], g[k] * q[k]);
  }
}

// ---------------------------------------------------------------------------
// Tiered placement + collision semantics
// ---------------------------------------------------------------------------

TEST(TieredBackendTest, ExplicitHotIdsGetPrivateRowsInOrder) {
  const auto cfg = EmbeddingBackendConfig::Tiered(2, 4, {7, 9});
  EmbeddingTable t("t", 64, 4, 1e-3f, 0.0f, cfg);
  EXPECT_EQ(t.tier_hot_rows(), 2u);
  EXPECT_EQ(t.tier_buckets(), 4u);
  EXPECT_EQ(t.BackingRows(), 6u);
  EXPECT_EQ(t.PrimaryRowOf(7), 0);
  EXPECT_EQ(t.PrimaryRowOf(9), 1);
  // Cold ids land in the bucket range via the documented stable hash.
  for (int32_t id : {0, 1, 33, 63}) {
    const int32_t expect =
        2 + static_cast<int32_t>(
                ShardStableHash64(static_cast<uint64_t>(id), cfg.tier_salt) %
                4);
    EXPECT_EQ(t.PrimaryRowOf(id), expect) << id;
  }
}

TEST(TieredBackendTest, FallbackHotSetIsLowIds) {
  // No explicit ids, no metadata: ids 1..K claim the private rows (the
  // hashed encoder places the most frequent values there).
  EmbeddingTable t("t", 64, 4, 1e-3f, 0.0f,
                   EmbeddingBackendConfig::Tiered(3, 4));
  EXPECT_EQ(t.PrimaryRowOf(1), 0);
  EXPECT_EQ(t.PrimaryRowOf(2), 1);
  EXPECT_EQ(t.PrimaryRowOf(3), 2);
  EXPECT_GE(t.PrimaryRowOf(0), 3);  // OOV hashes into the cold buckets
}

TEST(TieredBackendTest, CollidingColdIdsShareOneTrainableRow) {
  EmbeddingTable t("t", 256, 2, 1e-3f, 0.0f,
                   EmbeddingBackendConfig::Tiered(2, 3));
  // With 254 cold ids in 3 buckets, collisions are guaranteed; find one.
  int32_t a = -1, b = -1;
  for (int32_t i = 4; i < 256 && b < 0; ++i) {
    for (int32_t j = i + 1; j < 256; ++j) {
      if (t.PrimaryRowOf(i) == t.PrimaryRowOf(j)) {
        a = i;
        b = j;
        break;
      }
    }
  }
  ASSERT_GE(a, 0);
  // Same backing pointer and summed gradients: memorization is genuinely
  // shared, not silently duplicated.
  EXPECT_EQ(t.Row(a), t.Row(b));
  const float g[2] = {1.0f, 3.0f};
  t.AccumulateGrad(a, g);
  t.AccumulateGrad(b, g);
  const float* acc = t.AccumulatedGrad(a);
  ASSERT_NE(acc, nullptr);
  EXPECT_EQ(acc[0], 2.0f);
  EXPECT_EQ(acc[1], 6.0f);
}

// ---------------------------------------------------------------------------
// Plan resolution
// ---------------------------------------------------------------------------

TEST(BackendResolveTest, SmallVocabsFallBackToDense) {
  EmbeddingBackendConfig qr = EmbeddingBackendConfig::QR();
  qr.min_vocab = 16;
  EXPECT_EQ(ResolveBackendForVocab(qr, 8).kind, EmbeddingBackendKind::kDense);
  EXPECT_EQ(ResolveBackendForVocab(qr, 16).kind, EmbeddingBackendKind::kQR);
}

TEST(BackendResolveTest, TierPlanReadsDatasetMetadata) {
  EmbeddingBackendConfig tiered = EmbeddingBackendConfig::Tiered();
  tiered.min_vocab = 2;
  const std::vector<std::vector<int32_t>> hot_meta = {{5, 2, 9}, {1}};
  EmbeddingBackendConfig cfg = ResolveTableBackend(tiered, 64, hot_meta, 0);
  EXPECT_EQ(cfg.tier_hot_ids, (std::vector<int32_t>{5, 2, 9}));
  // Field beyond the metadata: stays empty (1..K fallback at the table).
  cfg = ResolveTableBackend(tiered, 64, hot_meta, 7);
  EXPECT_TRUE(cfg.tier_hot_ids.empty());
  // Explicit policy ids always win over metadata.
  EmbeddingBackendConfig explicit_ids =
      EmbeddingBackendConfig::Tiered(0, 0, {42});
  explicit_ids.min_vocab = 2;
  cfg = ResolveTableBackend(explicit_ids, 64, hot_meta, 0);
  EXPECT_EQ(cfg.tier_hot_ids, (std::vector<int32_t>{42}));
}

// ---------------------------------------------------------------------------
// Actionable failures
// ---------------------------------------------------------------------------

using EmbeddingBackendsDeathTest = ::testing::Test;

TEST(EmbeddingBackendsDeathTest, RowOnQrNamesTheFix) {
  EmbeddingTable t("cross_emb/3", 100, 4, 1e-3f, 0.0f,
                   EmbeddingBackendConfig::QR());
  EXPECT_DEATH(t.Row(1), "cross_emb/3.*CopyRow");
}

TEST(EmbeddingBackendsDeathTest, OutOfRangeIdNamesTableAndVocab) {
  EmbeddingTable t("feat_emb/0", 50, 4, 1e-3f, 0.0f);
  float dst[4];
  EXPECT_DEATH(t.CopyRow(50, dst), "feat_emb/0.*vocab 50.*id 50");
  const float g[4] = {0, 0, 0, 0};
  EXPECT_DEATH(t.AccumulateGrad(-1, g), "feat_emb/0.*AccumulateGrad.*-1");
}

// ---------------------------------------------------------------------------
// Prepared-path parity
// ---------------------------------------------------------------------------

// Legacy Forward/Backward/Step and the phase-split
// Prepare/ForwardPrepared/BackwardPrepared/StepPrepared must leave
// bit-identical weights for every backend (they share Adam state and
// accumulate per backing row in the same order).
void CheckPreparedParity(const EmbeddingBackendConfig& backend) {
  const auto& p = SharedTinyData();
  Rng rng1(99), rng2(99);
  FeatureEmbedding legacy(p.data, 8, 1e-3f, 0.0f, &rng1, backend);
  FeatureEmbedding prepared(p.data, 8, 1e-3f, 0.0f, &rng2, backend);
  Batch batch = HeadBatch(p, 128);
  Rng grad_rng(5);
  Tensor d_out({batch.size, legacy.output_dim()});
  for (size_t i = 0; i < d_out.size(); ++i) {
    d_out[i] = static_cast<float>(grad_rng.Gaussian());
  }

  for (int step = 0; step < 3; ++step) {
    Tensor out1;
    legacy.Forward(batch, &out1);
    legacy.Backward(d_out);

    PreparedBatch prep;
    Tensor out2;
    prep.BeginFill(batch);
    prepared.Prepare(batch, &prep);
    prepared.ForwardPrepared(prep, &out2);
    prepared.BackwardPrepared(d_out, prep);

    legacy.Step();
    prepared.StepPrepared();

    ASSERT_EQ(out1.size(), out2.size());
    EXPECT_EQ(std::memcmp(out1.data(), out2.data(),
                          out1.size() * sizeof(float)),
              0)
        << "forward mismatch at step " << step;
  }
  for (size_t f = 0; f < p.data.num_categorical(); ++f) {
    const Tensor& v1 = legacy.cat_table(f).values();
    const Tensor& v2 = prepared.cat_table(f).values();
    ASSERT_EQ(v1.size(), v2.size());
    EXPECT_EQ(std::memcmp(v1.data(), v2.data(), v1.size() * sizeof(float)),
              0)
        << "table " << f << " diverged";
  }
  // Continuous tables go through the scaled-accumulate path, which has
  // its own legacy/prepared rounding contract (AddScaledRow).
  for (size_t f = 0; f < p.data.num_continuous(); ++f) {
    const Tensor& v1 = legacy.cont_table(f).values();
    const Tensor& v2 = prepared.cont_table(f).values();
    ASSERT_EQ(v1.size(), v2.size());
    EXPECT_EQ(std::memcmp(v1.data(), v2.data(), v1.size() * sizeof(float)),
              0)
        << "cont table " << f << " diverged";
  }
}

// Single-table QR parity: the prepared slot scatter (dedup in backing
// space, per-shard row buckets) accumulates the same per-backing-row
// sums as the serial AccumulateGrad loop, and the two Adam steps leave
// bit-identical weights.
TEST(PreparedParityTest, QrSingleTableScatterMatchesLegacy) {
  Rng rng1(7), rng2(7);
  EmbeddingTable legacy("dbg", 40, 4, 1e-3f, 0.0f,
                        EmbeddingBackendConfig::QR());
  EmbeddingTable prepared("dbg", 40, 4, 1e-3f, 0.0f,
                          EmbeddingBackendConfig::QR());
  legacy.Init(&rng1);
  prepared.Init(&rng2);
  const std::vector<int32_t> ids = {5, 17, 5, 23, 9, 38, 17, 0};
  const size_t n = ids.size();
  std::vector<float> grads(n * 4);
  Rng grng(3);
  for (float& g : grads) g = static_cast<float>(grng.Gaussian());

  IdDedupScratch dedup;
  PreparedTable pt;
  PrepareTableIds(prepared, n, [&](size_t k) { return ids[k]; }, &dedup,
                  &pt);
  prepared.BeginPreparedScatter(pt.unique_rows.data(), pt.unique_rows.size());
  for (size_t shard = 0; shard < EmbeddingTable::kGradShards; ++shard) {
    for (const int32_t k : pt.shard_rows[shard]) {
      prepared.AccumulatePreparedGradPrimary(
          static_cast<size_t>(pt.slots[k]), pt.ids[k], grads.data() + k * 4);
    }
    for (const int32_t k : pt.shard_rows2[shard]) {
      prepared.AccumulatePreparedGradSecondary(
          static_cast<size_t>(pt.slots2[k]), pt.ids[k], grads.data() + k * 4);
    }
  }
  for (size_t k = 0; k < n; ++k) {
    legacy.AccumulateGrad(ids[k], grads.data() + k * 4);
  }
  // Per-backing-row grad sums must match bitwise.
  for (size_t s = 0; s < pt.unique_rows.size(); ++s) {
    const int32_t row = pt.unique_rows[s];
    const float* pg = prepared.PreparedGrad(s);
    const float* lg = legacy.AccumulatedGradForRow(row);
    ASSERT_NE(lg, nullptr) << "row " << row << " untouched in legacy";
    EXPECT_EQ(std::memcmp(pg, lg, 4 * sizeof(float)), 0)
        << "grad mismatch backing row " << row << " slot " << s;
  }
  legacy.SparseAdamStep();
  prepared.SparseAdamStepPrepared();
  const Tensor& v1 = legacy.values();
  const Tensor& v2 = prepared.values();
  for (size_t r = 0; r < legacy.BackingRows(); ++r) {
    EXPECT_EQ(std::memcmp(v1.row(r), v2.row(r), 4 * sizeof(float)), 0)
        << "weight mismatch backing row " << r;
  }
}

TEST(PreparedParityTest, QrSum) {
  EmbeddingBackendConfig cfg = EmbeddingBackendConfig::QR();
  cfg.min_vocab = 2;
  CheckPreparedParity(cfg);
}

TEST(PreparedParityTest, QrMul) {
  EmbeddingBackendConfig cfg =
      EmbeddingBackendConfig::QR(0, QrCombine::kMul);
  cfg.min_vocab = 2;
  CheckPreparedParity(cfg);
}

TEST(PreparedParityTest, Tiered) {
  EmbeddingBackendConfig cfg = EmbeddingBackendConfig::Tiered();
  cfg.min_vocab = 2;
  CheckPreparedParity(cfg);
}

// ---------------------------------------------------------------------------
// Checkpoint -> reload -> quantize round trips
// ---------------------------------------------------------------------------

void CheckCheckpointQuantizeRoundTrip(const EmbeddingBackendConfig& cross,
                                      const std::string& tag) {
  const auto& p = SharedTinyData();
  HyperParams hp = DefaultHyperParams("tiny");
  hp.seed = 4242;
  hp.cross_backend = cross;
  hp.cross_backend.min_vocab = 2;

  auto trained = FixedArchModel::MakeOptInterM(p.data, hp);
  Batch b = HeadBatch(p, 128);
  for (int i = 0; i < 3; ++i) trained->TrainStep(b);
  const size_t params = trained->ParamCount();

  Batch eval = HeadBatch(p, 64);
  std::vector<float> ref_probs;
  trained->Predict(eval, &ref_probs);

  const std::string path =
      ::testing::TempDir() + "backend_roundtrip_" + tag + ".bin";
  ASSERT_TRUE(SaveModel(trained.get(), path).ok());

  // Reload into an identically constructed model: bitwise equal output.
  auto reloaded = FixedArchModel::MakeOptInterM(p.data, hp);
  ASSERT_TRUE(LoadModel(reloaded.get(), path).ok());
  EXPECT_EQ(reloaded->ParamCount(), params);
  std::vector<float> probs;
  reloaded->Predict(eval, &probs);
  ASSERT_EQ(probs.size(), ref_probs.size());
  for (size_t i = 0; i < probs.size(); ++i) {
    EXPECT_EQ(probs[i], ref_probs[i]) << i;
  }

  // Quantize the reloaded snapshot: bf16 must track fp32 closely even
  // through composed/remapped rows.
  std::shared_ptr<const CtrModel> fp32(std::move(reloaded));
  std::shared_ptr<const CtrModel> q16;
  ASSERT_TRUE(QuantizeSnapshot(fp32, QuantMode::kBf16, &q16).ok());
  EXPECT_EQ(q16->ParamCount(), params);
  ForwardContext ctx;
  std::vector<float> qprobs;
  q16->Predict(eval, &qprobs, &ctx);
  ASSERT_EQ(qprobs.size(), ref_probs.size());
  for (size_t i = 0; i < qprobs.size(); ++i) {
    EXPECT_NEAR(qprobs[i], ref_probs[i], 0.01) << i;
  }
  std::remove(path.c_str());
}

TEST(BackendRoundTripTest, QrCrossTables) {
  CheckCheckpointQuantizeRoundTrip(EmbeddingBackendConfig::QR(), "qr");
}

TEST(BackendRoundTripTest, QrMulCrossTables) {
  CheckCheckpointQuantizeRoundTrip(
      EmbeddingBackendConfig::QR(0, QrCombine::kMul), "qr_mul");
}

TEST(BackendRoundTripTest, TieredCrossTables) {
  CheckCheckpointQuantizeRoundTrip(EmbeddingBackendConfig::Tiered(),
                                   "tiered");
}

}  // namespace
}  // namespace optinter
