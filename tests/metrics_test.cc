#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "common/rng.h"
#include "data/dataset.h"
#include "metrics/metrics.h"
#include "metrics/mutual_information.h"
#include "metrics/significance.h"

namespace optinter {
namespace {

// ---------------------------------------------------------------------------
// AUC
// ---------------------------------------------------------------------------

TEST(AucTest, PerfectRanking) {
  const std::vector<float> scores = {0.1f, 0.2f, 0.8f, 0.9f};
  const std::vector<float> labels = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(Auc(scores, labels), 1.0);
}

TEST(AucTest, ReversedRanking) {
  const std::vector<float> scores = {0.9f, 0.8f, 0.2f, 0.1f};
  const std::vector<float> labels = {0, 0, 1, 1};
  EXPECT_DOUBLE_EQ(Auc(scores, labels), 0.0);
}

TEST(AucTest, AllTiedIsHalf) {
  const std::vector<float> scores = {0.5f, 0.5f, 0.5f, 0.5f};
  const std::vector<float> labels = {0, 1, 0, 1};
  EXPECT_DOUBLE_EQ(Auc(scores, labels), 0.5);
}

TEST(AucTest, PartialTiesMidrank) {
  // scores: pos at 0.5(t), neg at 0.5(t), pos at 0.9, neg at 0.1.
  // Pairs: (0.5p vs 0.5n)=0.5, (0.5p vs 0.1n)=1, (0.9p vs 0.5n)=1,
  // (0.9p vs 0.1n)=1 → AUC = 3.5/4.
  const std::vector<float> scores = {0.5f, 0.5f, 0.9f, 0.1f};
  const std::vector<float> labels = {1, 0, 1, 0};
  EXPECT_DOUBLE_EQ(Auc(scores, labels), 3.5 / 4.0);
}

TEST(AucTest, KnownHandComputedCase) {
  // pos scores {0.8, 0.4}, neg {0.6, 0.2}: pairs won = (0.8>0.6)+(0.8>0.2)
  // +(0.4<0.6:0)+(0.4>0.2) = 3 of 4.
  const std::vector<float> scores = {0.8f, 0.4f, 0.6f, 0.2f};
  const std::vector<float> labels = {1, 1, 0, 0};
  EXPECT_DOUBLE_EQ(Auc(scores, labels), 0.75);
}

TEST(AucTest, RandomScoresNearHalf) {
  Rng rng(3);
  const size_t n = 20000;
  std::vector<float> scores(n), labels(n);
  for (size_t i = 0; i < n; ++i) {
    scores[i] = static_cast<float>(rng.Uniform());
    labels[i] = rng.Bernoulli(0.3) ? 1.0f : 0.0f;
  }
  EXPECT_NEAR(Auc(scores, labels), 0.5, 0.02);
}

TEST(AucTest, SerialReferenceMatchesAucOnTies) {
  const std::vector<float> scores = {0.5f, 0.5f, 0.9f, 0.1f, 0.5f, 0.9f};
  const std::vector<float> labels = {1, 0, 1, 0, 0, 0};
  EXPECT_DOUBLE_EQ(internal::AucSerial(scores, labels), Auc(scores, labels));
}

TEST(AucTest, ParallelPathMatchesSerialOnLargeTiedInput) {
  // Past the parallel-sort threshold with heavily quantized (tied) scores:
  // the (score, index) total order must make chunked sort + merge
  // reproduce the serial result exactly, midranks included.
  Rng rng(404);
  const size_t n = (1u << 16) + 77;
  std::vector<float> scores(n), labels(n);
  for (size_t i = 0; i < n; ++i) {
    scores[i] =
        static_cast<float>(static_cast<int>(rng.Uniform(0.0, 16.0))) / 16.0f;
    labels[i] = rng.Uniform(0.0, 1.0) < 0.25 ? 1.0f : 0.0f;
  }
  EXPECT_EQ(Auc(scores, labels), internal::AucSerial(scores, labels));
}

TEST(AucTest, InvariantToMonotoneTransform) {
  Rng rng(4);
  std::vector<float> scores(500), labels(500);
  for (size_t i = 0; i < 500; ++i) {
    scores[i] = static_cast<float>(rng.Uniform(-3, 3));
    labels[i] = rng.Bernoulli(0.4) ? 1.0f : 0.0f;
  }
  std::vector<float> transformed(500);
  for (size_t i = 0; i < 500; ++i) {
    transformed[i] = std::tanh(scores[i]) * 10.0f + 5.0f;
  }
  EXPECT_NEAR(Auc(scores, labels), Auc(transformed, labels), 1e-12);
}

// ---------------------------------------------------------------------------
// LogLoss
// ---------------------------------------------------------------------------

TEST(LogLossTest, KnownValue) {
  const std::vector<float> probs = {0.9f, 0.1f};
  const std::vector<float> labels = {1, 0};
  EXPECT_NEAR(LogLoss(probs, labels), -std::log(0.9), 1e-6);
}

TEST(LogLossTest, ClampsExtremeProbs) {
  const std::vector<float> probs = {1.0f, 0.0f};
  const std::vector<float> labels = {0, 1};
  const double ll = LogLoss(probs, labels);
  EXPECT_TRUE(std::isfinite(ll));
  EXPECT_GT(ll, 10.0);
}

TEST(LogLossTest, PerfectPredictionNearZero) {
  const std::vector<float> probs = {0.999999f, 0.000001f};
  const std::vector<float> labels = {1, 0};
  EXPECT_LT(LogLoss(probs, labels), 1e-4);
}

TEST(StatsTest, MeanVariance) {
  const std::vector<double> xs = {1, 2, 3, 4, 5};
  EXPECT_DOUBLE_EQ(Mean(xs), 3.0);
  EXPECT_DOUBLE_EQ(Variance(xs), 2.5);
}

// ---------------------------------------------------------------------------
// Mutual information
// ---------------------------------------------------------------------------

EncodedDataset MiDataset(const std::vector<int32_t>& f0,
                         const std::vector<int32_t>& f1,
                         const std::vector<float>& y) {
  EncodedDataset d;
  d.schema = DatasetSchema({{"a", FieldType::kCategorical},
                            {"b", FieldType::kCategorical}});
  d.num_rows = y.size();
  d.cat_ids.resize(2 * y.size());
  int32_t max0 = 0, max1 = 0;
  for (size_t r = 0; r < y.size(); ++r) {
    d.cat_ids[r * 2] = f0[r];
    d.cat_ids[r * 2 + 1] = f1[r];
    max0 = std::max(max0, f0[r]);
    max1 = std::max(max1, f1[r]);
  }
  d.cat_vocab_sizes = {static_cast<size_t>(max0) + 1,
                       static_cast<size_t>(max1) + 1};
  d.labels = y;
  return d;
}

std::vector<size_t> Iota(size_t n) {
  std::vector<size_t> v(n);
  std::iota(v.begin(), v.end(), 0);
  return v;
}

TEST(MiTest, IndependentPairHasZeroMi) {
  // Label independent of features: MI ≈ 0. Build a balanced design where
  // every (f0, f1) cell contains one positive and one negative.
  std::vector<int32_t> f0, f1;
  std::vector<float> y;
  for (int32_t a = 0; a < 2; ++a) {
    for (int32_t b = 0; b < 2; ++b) {
      for (int lab = 0; lab < 2; ++lab) {
        f0.push_back(a);
        f1.push_back(b);
        y.push_back(static_cast<float>(lab));
      }
    }
  }
  EncodedDataset d = MiDataset(f0, f1, y);
  EXPECT_NEAR(PairLabelMutualInformation(d, 0, Iota(y.size())), 0.0, 1e-12);
}

TEST(MiTest, DeterministicPairEqualsLabelEntropy) {
  // Label = XOR(f0, f1): pair determines label exactly; MI = H(y) = ln 2.
  std::vector<int32_t> f0, f1;
  std::vector<float> y;
  for (int rep = 0; rep < 4; ++rep) {
    for (int32_t a = 0; a < 2; ++a) {
      for (int32_t b = 0; b < 2; ++b) {
        f0.push_back(a);
        f1.push_back(b);
        y.push_back(static_cast<float>(a ^ b));
      }
    }
  }
  EncodedDataset d = MiDataset(f0, f1, y);
  const auto rows = Iota(y.size());
  EXPECT_NEAR(PairLabelMutualInformation(d, 0, rows), std::log(2.0), 1e-12);
  EXPECT_NEAR(LabelEntropy(d, rows), std::log(2.0), 1e-12);
  // XOR hides the signal from each field alone: marginal MI = 0.
  EXPECT_NEAR(FieldLabelMutualInformation(d, 0, rows), 0.0, 1e-12);
  EXPECT_NEAR(FieldLabelMutualInformation(d, 1, rows), 0.0, 1e-12);
}

TEST(MiTest, AllPairsShapeAndOrder) {
  std::vector<int32_t> f0 = {0, 1, 0, 1};
  std::vector<int32_t> f1 = {0, 0, 1, 1};
  std::vector<float> y = {0, 1, 1, 0};
  EncodedDataset d = MiDataset(f0, f1, y);
  auto mi = AllPairMutualInformation(d, Iota(4));
  ASSERT_EQ(mi.size(), 1u);
  EXPECT_NEAR(mi[0], std::log(2.0), 1e-12);
}

TEST(MiTest, NonNegative) {
  Rng rng(5);
  std::vector<int32_t> f0(300), f1(300);
  std::vector<float> y(300);
  for (size_t i = 0; i < 300; ++i) {
    f0[i] = static_cast<int32_t>(rng.UniformInt(5));
    f1[i] = static_cast<int32_t>(rng.UniformInt(7));
    y[i] = rng.Bernoulli(0.4) ? 1.0f : 0.0f;
  }
  EncodedDataset d = MiDataset(f0, f1, y);
  EXPECT_GE(PairLabelMutualInformation(d, 0, Iota(300)), 0.0);
}

// ---------------------------------------------------------------------------
// Significance
// ---------------------------------------------------------------------------

TEST(BetaTest, BoundaryValues) {
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2, 3, 0.0), 0.0);
  EXPECT_DOUBLE_EQ(RegularizedIncompleteBeta(2, 3, 1.0), 1.0);
}

TEST(BetaTest, SymmetricCase) {
  // I_{0.5}(a, a) = 0.5.
  EXPECT_NEAR(RegularizedIncompleteBeta(3.0, 3.0, 0.5), 0.5, 1e-9);
}

TEST(BetaTest, KnownValue) {
  // I_x(1, 1) = x (uniform CDF).
  EXPECT_NEAR(RegularizedIncompleteBeta(1.0, 1.0, 0.3), 0.3, 1e-9);
}

TEST(StudentTTest, KnownQuantiles) {
  // t=2.776 at df=4 → two-tailed p ≈ 0.05.
  EXPECT_NEAR(StudentTTwoTailedP(2.776, 4.0), 0.05, 2e-3);
  // t=0 → p = 1.
  EXPECT_NEAR(StudentTTwoTailedP(0.0, 10.0), 1.0, 1e-9);
  // Huge t → p ≈ 0.
  EXPECT_LT(StudentTTwoTailedP(50.0, 10.0), 1e-8);
}

TEST(WelchTest, DetectsLargeDifference) {
  const std::vector<double> a = {10.0, 10.1, 9.9, 10.05, 9.95};
  const std::vector<double> b = {5.0, 5.1, 4.9, 5.05, 4.95};
  auto r = WelchTTest(a, b);
  EXPECT_LT(r.p_value, 1e-6);
  EXPECT_GT(r.t_statistic, 10.0);
}

TEST(WelchTest, SameDistributionHighP) {
  const std::vector<double> a = {1.0, 1.2, 0.8, 1.1, 0.9};
  const std::vector<double> b = {1.05, 0.95, 1.15, 0.85, 1.0};
  auto r = WelchTTest(a, b);
  EXPECT_GT(r.p_value, 0.5);
}

TEST(PairedTest, DetectsConsistentImprovement) {
  const std::vector<double> base = {0.80, 0.81, 0.79, 0.80, 0.82};
  std::vector<double> improved = base;
  for (auto& x : improved) x += 0.002;  // consistent +0.2pp
  auto r = PairedTTest(improved, base);
  EXPECT_LT(r.p_value, 1e-6);
}

TEST(PairedTest, ZeroDifferenceIsPOne) {
  const std::vector<double> a = {1.0, 2.0, 3.0};
  auto r = PairedTTest(a, a);
  EXPECT_DOUBLE_EQ(r.p_value, 1.0);
}

}  // namespace
}  // namespace optinter
