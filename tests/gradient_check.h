// Finite-difference gradient checking helpers for tests.
//
// CheckGradient compares an analytically-computed gradient for a float
// buffer against central differences of a scalar loss closure. Loss
// closures must be deterministic (re-seed any sampling).

#pragma once

#include <cmath>
#include <functional>
#include <vector>

#include <gtest/gtest.h>

#include "common/thread_pool.h"

namespace optinter {
namespace testing {

/// Relative-error comparison tolerant of tiny magnitudes.
inline double RelError(double a, double b) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) / scale;
}

/// Checks d(loss)/d(buf[i]) for all i in [0, n) against central
/// differences. `loss` must recompute the full forward pass from current
/// buffer contents. `analytic[i]` is the gradient under test.
inline void CheckGradient(float* buf, size_t n, const float* analytic,
                          const std::function<double()>& loss,
                          double eps = 1e-3, double tol = 2e-2) {
  for (size_t i = 0; i < n; ++i) {
    const float saved = buf[i];
    buf[i] = saved + static_cast<float>(eps);
    const double up = loss();
    buf[i] = saved - static_cast<float>(eps);
    const double down = loss();
    buf[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_LT(RelError(numeric, analytic[i]), tol)
        << "grad mismatch at " << i << ": numeric=" << numeric
        << " analytic=" << analytic[i];
  }
}

/// Largest finite-difference relative error over buf[0..n) — the same
/// comparison CheckGradient makes, reduced to one number so tests can
/// assert the error itself is unchanged between configurations.
inline double MaxGradRelError(float* buf, size_t n, const float* analytic,
                              const std::function<double()>& loss,
                              double eps = 1e-3) {
  double max_err = 0.0;
  for (size_t i = 0; i < n; ++i) {
    const float saved = buf[i];
    buf[i] = saved + static_cast<float>(eps);
    const double up = loss();
    buf[i] = saved - static_cast<float>(eps);
    const double down = loss();
    buf[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    max_err = std::max(max_err, RelError(numeric, analytic[i]));
  }
  return max_err;
}

/// Checks a parallel backward path at several global thread counts.
///
/// `compute_grads` must recompute the analytic gradient under test from
/// scratch (zero accumulators, forward, backward) and return it; its
/// backward must route through ThreadPool::Global() so resizing the pool
/// exercises the 1-thread serial execution and the multi-thread fan-out
/// of the same fixed chunk grid. Every recomputation must be bit-identical
/// to the first — the determinism contract — which also pins the
/// finite-difference max rel-error (checked once, against `check_n`
/// entries of `buf`) to exactly the serial value at every thread count.
/// Restores the original pool size before returning.
inline void CheckGradientAcrossThreadCounts(
    const std::vector<size_t>& thread_counts,
    const std::function<std::vector<float>()>& compute_grads, float* buf,
    size_t check_n, const std::function<double()>& loss, double eps = 1e-3,
    double tol = 2e-2) {
  ASSERT_FALSE(thread_counts.empty());
  const size_t restore = ThreadPool::Global().num_threads();
  ThreadPool::SetGlobalThreads(thread_counts[0]);
  const std::vector<float> reference = compute_grads();
  for (size_t ti = 1; ti < thread_counts.size(); ++ti) {
    ThreadPool::SetGlobalThreads(thread_counts[ti]);
    const std::vector<float> grads = compute_grads();
    ASSERT_EQ(grads.size(), reference.size());
    for (size_t i = 0; i < grads.size(); ++i) {
      // Exact equality, not near: parallel must match serial bit for bit.
      EXPECT_EQ(grads[i], reference[i])
          << "gradient differs from the " << thread_counts[0]
          << "-thread reference at index " << i << " with "
          << thread_counts[ti] << " threads";
    }
  }
  ThreadPool::SetGlobalThreads(restore);
  ASSERT_LE(check_n, reference.size());
  const double err =
      MaxGradRelError(buf, check_n, reference.data(), loss, eps);
  EXPECT_LT(err, tol);
}

}  // namespace testing
}  // namespace optinter
