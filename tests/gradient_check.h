// Finite-difference gradient checking helpers for tests.
//
// CheckGradient compares an analytically-computed gradient for a float
// buffer against central differences of a scalar loss closure. Loss
// closures must be deterministic (re-seed any sampling).

#pragma once

#include <cmath>
#include <functional>

#include <gtest/gtest.h>

namespace optinter {
namespace testing {

/// Relative-error comparison tolerant of tiny magnitudes.
inline double RelError(double a, double b) {
  const double scale = std::max({1.0, std::fabs(a), std::fabs(b)});
  return std::fabs(a - b) / scale;
}

/// Checks d(loss)/d(buf[i]) for all i in [0, n) against central
/// differences. `loss` must recompute the full forward pass from current
/// buffer contents. `analytic[i]` is the gradient under test.
inline void CheckGradient(float* buf, size_t n, const float* analytic,
                          const std::function<double()>& loss,
                          double eps = 1e-3, double tol = 2e-2) {
  for (size_t i = 0; i < n; ++i) {
    const float saved = buf[i];
    buf[i] = saved + static_cast<float>(eps);
    const double up = loss();
    buf[i] = saved - static_cast<float>(eps);
    const double down = loss();
    buf[i] = saved;
    const double numeric = (up - down) / (2.0 * eps);
    EXPECT_LT(RelError(numeric, analytic[i]), tol)
        << "grad mismatch at " << i << ": numeric=" << numeric
        << " analytic=" << analytic[i];
  }
}

}  // namespace testing
}  // namespace optinter
