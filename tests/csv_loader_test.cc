#include <gtest/gtest.h>

#include <fstream>

#include "data/csv_loader.h"
#include "data/encoder.h"

namespace optinter {
namespace {

std::string WriteTemp(const std::string& name, const std::string& content) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream(path) << content;
  return path;
}

DatasetSchema AdSchema() {
  return DatasetSchema({{"site", FieldType::kCategorical},
                        {"device", FieldType::kCategorical},
                        {"hour", FieldType::kContinuous}});
}

TEST(CsvLoaderTest, LoadsBasicFile) {
  const std::string path = WriteTemp("basic.csv",
                                     "site,device,hour,label\n"
                                     "a.com,phone,3,1\n"
                                     "b.com,tablet,15,0\n"
                                     "a.com,phone,23,1\n");
  auto raw = LoadCsvDataset(path, AdSchema());
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  EXPECT_EQ(raw->num_rows, 3u);
  EXPECT_EQ(raw->labels, (std::vector<float>{1, 0, 1}));
  // Same string → same hashed value; different strings differ.
  EXPECT_EQ(raw->cat(0, 0), raw->cat(2, 0));
  EXPECT_NE(raw->cat(0, 0), raw->cat(1, 0));
  EXPECT_FLOAT_EQ(raw->cont(1, 0), 15.0f);
}

TEST(CsvLoaderTest, ColumnOrderIndependent) {
  // Schema order differs from file column order; matching is by name.
  const std::string path = WriteTemp("reorder.csv",
                                     "label,hour,device,site\n"
                                     "1,5,phone,x.com\n");
  auto raw = LoadCsvDataset(path, AdSchema());
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->cat(0, 0), static_cast<int64_t>(
                                HashCategorical("x.com") >> 1));
  EXPECT_FLOAT_EQ(raw->cont(0, 0), 5.0f);
}

TEST(CsvLoaderTest, ExtraColumnsIgnored) {
  const std::string path = WriteTemp("extra.csv",
                                     "site,device,hour,label,debug_id\n"
                                     "a,b,1,0,zzz\n");
  auto raw = LoadCsvDataset(path, AdSchema());
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->num_rows, 1u);
}

TEST(CsvLoaderTest, MissingCellsHandled) {
  const std::string path = WriteTemp("missing.csv",
                                     "site,device,hour,label\n"
                                     ",phone,,1\n"
                                     ",tablet,2,0\n");
  CsvOptions opts;
  opts.missing_value = -1.0f;
  auto raw = LoadCsvDataset(path, AdSchema(), opts);
  ASSERT_TRUE(raw.ok());
  // Both empty sites map to the same missing token hash.
  EXPECT_EQ(raw->cat(0, 0), raw->cat(1, 0));
  EXPECT_FLOAT_EQ(raw->cont(0, 0), -1.0f);
}

TEST(CsvLoaderTest, CrlfLineEndingsParseLikeLf) {
  const std::string path = WriteTemp("crlf.csv",
                                     "site,device,hour,label\r\n"
                                     "a.com,phone,3,1\r\n"
                                     "\r\n"
                                     "b.com,tablet,15,0\r\n");
  auto raw = LoadCsvDataset(path, AdSchema());
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  EXPECT_EQ(raw->num_rows, 2u);  // the bare CRLF line is a blank separator
  EXPECT_EQ(raw->labels, (std::vector<float>{1, 0}));
  EXPECT_FLOAT_EQ(raw->cont(1, 0), 15.0f);
}

TEST(CsvLoaderTest, TrailingEmptyCellSurvivesTabDelimiter) {
  // Regression: a whole-line Trim ate the trailing tab of a row whose
  // last cell is empty, shifting the cell count and rejecting the row.
  const std::string path = WriteTemp("trailing.tsv",
                                     "site\tdevice\tlabel\thour\r\n"
                                     "a.com\tphone\t1\t\r\n"
                                     "b.com\ttablet\t0\t7\n");
  CsvOptions opts;
  opts.delimiter = '\t';
  opts.missing_value = -1.0f;
  auto raw = LoadCsvDataset(path, AdSchema(), opts);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  ASSERT_EQ(raw->num_rows, 2u);
  EXPECT_FLOAT_EQ(raw->cont(0, 0), -1.0f);  // empty trailing hour cell
  EXPECT_FLOAT_EQ(raw->cont(1, 0), 7.0f);
  EXPECT_EQ(raw->labels, (std::vector<float>{1, 0}));
}

TEST(CsvLoaderTest, NumericLabelThreshold) {
  const std::string path = WriteTemp("numlabel.csv",
                                     "site,device,hour,label\n"
                                     "a,b,1,0.9\n"
                                     "a,b,1,0.1\n");
  auto raw = LoadCsvDataset(path, AdSchema());
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->labels[0], 1.0f);
  EXPECT_EQ(raw->labels[1], 0.0f);
}

TEST(CsvLoaderTest, CustomLabelColumnAndDelimiter) {
  const std::string path = WriteTemp("tsv.tsv",
                                     "site\tdevice\thour\tclicked\n"
                                     "a\tb\t2\t1\n");
  CsvOptions opts;
  opts.delimiter = '\t';
  opts.label_column = "clicked";
  auto raw = LoadCsvDataset(path, AdSchema(), opts);
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  EXPECT_EQ(raw->labels[0], 1.0f);
}

TEST(CsvLoaderTest, MaxRowsCapsLoading) {
  const std::string path = WriteTemp("cap.csv",
                                     "site,device,hour,label\n"
                                     "a,b,1,1\na,b,1,0\na,b,1,1\n");
  CsvOptions opts;
  opts.max_rows = 2;
  auto raw = LoadCsvDataset(path, AdSchema(), opts);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->num_rows, 2u);
}

TEST(CsvLoaderTest, MissingLabelColumnRejected) {
  const std::string path = WriteTemp("nolabel.csv",
                                     "site,device,hour\na,b,1\n");
  auto raw = LoadCsvDataset(path, AdSchema());
  EXPECT_FALSE(raw.ok());
  EXPECT_EQ(raw.status().code(), StatusCode::kNotFound);
}

TEST(CsvLoaderTest, MissingSchemaFieldRejected) {
  const std::string path = WriteTemp("nofield.csv",
                                     "site,hour,label\na,1,1\n");
  auto raw = LoadCsvDataset(path, AdSchema());
  EXPECT_FALSE(raw.ok());
}

TEST(CsvLoaderTest, RaggedRowRejected) {
  const std::string path = WriteTemp("ragged.csv",
                                     "site,device,hour,label\n"
                                     "a,b,1\n");
  auto raw = LoadCsvDataset(path, AdSchema());
  EXPECT_FALSE(raw.ok());
}

TEST(CsvLoaderTest, EmptyFileRejected) {
  const std::string path = WriteTemp("empty.csv", "");
  EXPECT_FALSE(LoadCsvDataset(path, AdSchema()).ok());
}

TEST(CsvLoaderTest, HeaderOnlyRejected) {
  const std::string path = WriteTemp("headeronly.csv",
                                     "site,device,hour,label\n");
  EXPECT_FALSE(LoadCsvDataset(path, AdSchema()).ok());
}

TEST(CsvLoaderTest, LoadedDataFlowsThroughEncoder) {
  // The whole point: CSV → RawDataset → EncodedDataset → crosses.
  std::string body = "site,device,hour,label\n";
  for (int i = 0; i < 40; ++i) {
    body += (i % 2 ? "a.com,phone," : "b.com,tablet,");
    body += std::to_string(i % 24) + "," + std::to_string(i % 3 == 0) +
            "\n";
  }
  const std::string path = WriteTemp("flow.csv", body);
  auto raw = LoadCsvDataset(path, AdSchema());
  ASSERT_TRUE(raw.ok());
  std::vector<size_t> rows(raw->num_rows);
  for (size_t i = 0; i < rows.size(); ++i) rows[i] = i;
  EncoderOptions eopts;
  eopts.cat_min_count = 2;
  eopts.cross_min_count = 2;
  auto enc = EncodeDataset(*raw, rows, eopts);
  ASSERT_TRUE(enc.ok());
  EncodedDataset data = std::move(enc).value();
  ASSERT_TRUE(BuildCrossFeatures(&data, rows, eopts).ok());
  EXPECT_EQ(data.num_pairs(), 1u);  // (site, device)
  EXPECT_GT(data.cross_vocab_sizes[0], 1u);
}

TEST(HashCategoricalTest, StableAndDistinct) {
  EXPECT_EQ(HashCategorical("abc"), HashCategorical("abc"));
  EXPECT_NE(HashCategorical("abc"), HashCategorical("abd"));
  EXPECT_NE(HashCategorical(""), HashCategorical(" "));
}

}  // namespace
}  // namespace optinter
