#include <gtest/gtest.h>

#include <numeric>
#include <set>

#include "data/batch.h"
#include "data/encoder.h"
#include "data/schema.h"
#include "data/vocab.h"

namespace optinter {
namespace {

// ---------------------------------------------------------------------------
// Schema
// ---------------------------------------------------------------------------

DatasetSchema MixedSchema() {
  return DatasetSchema({{"c0", FieldType::kCategorical},
                        {"c1", FieldType::kCategorical},
                        {"x0", FieldType::kContinuous},
                        {"c2", FieldType::kCategorical}});
}

TEST(SchemaTest, FieldPartition) {
  DatasetSchema s = MixedSchema();
  EXPECT_EQ(s.num_fields(), 4u);
  EXPECT_EQ(s.num_categorical(), 3u);
  EXPECT_EQ(s.num_continuous(), 1u);
  EXPECT_EQ(s.categorical_fields(), (std::vector<size_t>{0, 1, 3}));
  EXPECT_EQ(s.continuous_fields(), (std::vector<size_t>{2}));
}

TEST(SchemaTest, NumPairsFormula) {
  DatasetSchema s = MixedSchema();
  EXPECT_EQ(s.num_pairs(), 3u);  // C(3,2)
}

TEST(SchemaTest, EnumeratePairsCanonicalOrder) {
  auto pairs = EnumeratePairs(4);
  ASSERT_EQ(pairs.size(), 6u);
  EXPECT_EQ(pairs[0], (std::pair<size_t, size_t>{0, 1}));
  EXPECT_EQ(pairs[1], (std::pair<size_t, size_t>{0, 2}));
  EXPECT_EQ(pairs[2], (std::pair<size_t, size_t>{0, 3}));
  EXPECT_EQ(pairs[3], (std::pair<size_t, size_t>{1, 2}));
  EXPECT_EQ(pairs[5], (std::pair<size_t, size_t>{2, 3}));
}

TEST(SchemaTest, PairIndexInverse) {
  for (size_t m : {2u, 5u, 13u, 26u}) {
    auto pairs = EnumeratePairs(m);
    for (size_t p = 0; p < pairs.size(); ++p) {
      EXPECT_EQ(PairIndex(pairs[p].first, pairs[p].second, m), p);
    }
  }
}

// ---------------------------------------------------------------------------
// Vocab
// ---------------------------------------------------------------------------

TEST(VocabTest, MinCountThresholding) {
  Vocab v;
  for (int i = 0; i < 5; ++i) v.Add(100);
  for (int i = 0; i < 2; ++i) v.Add(200);
  v.Add(300);
  v.Finalize(/*min_count=*/3);
  EXPECT_EQ(v.size(), 2u);  // OOV + {100}
  EXPECT_NE(v.Encode(100), Vocab::kOovId);
  EXPECT_EQ(v.Encode(200), Vocab::kOovId);
  EXPECT_EQ(v.Encode(300), Vocab::kOovId);
  EXPECT_EQ(v.Encode(999), Vocab::kOovId);
}

TEST(VocabTest, DeterministicIdsAcrossInsertOrder) {
  Vocab a, b;
  a.Add(3);
  a.Add(1);
  a.Add(2);
  b.Add(2);
  b.Add(3);
  b.Add(1);
  a.Finalize(1);
  b.Finalize(1);
  for (int64_t v : {1, 2, 3}) EXPECT_EQ(a.Encode(v), b.Encode(v));
}

TEST(VocabTest, IdsAreDense) {
  Vocab v;
  v.Add(10);
  v.Add(20);
  v.Add(30);
  v.Finalize(1);
  std::set<int32_t> ids = {v.Encode(10), v.Encode(20), v.Encode(30)};
  EXPECT_EQ(ids, (std::set<int32_t>{1, 2, 3}));
  EXPECT_EQ(v.size(), 4u);
}

// ---------------------------------------------------------------------------
// Encoder
// ---------------------------------------------------------------------------

RawDataset SmallRaw() {
  RawDataset raw;
  raw.schema = MixedSchema();
  raw.num_rows = 6;
  // 3 categorical fields, 1 continuous.
  raw.cat_values = {
      // c0, c1, c2 per row
      1, 10, 100,  //
      1, 10, 100,  //
      1, 20, 100,  //
      2, 20, 200,  //
      2, 10, 100,  //
      9, 99, 999,  // row 5: rare values
  };
  raw.cont_values = {0.0f, 5.0f, 10.0f, 2.5f, 7.5f, 100.0f};
  raw.labels = {1, 0, 1, 0, 1, 0};
  return raw;
}

std::vector<size_t> AllRows(size_t n) {
  std::vector<size_t> rows(n);
  std::iota(rows.begin(), rows.end(), 0);
  return rows;
}

TEST(EncoderTest, EncodesWithOov) {
  RawDataset raw = SmallRaw();
  EncoderOptions opts;
  opts.cat_min_count = 2;
  auto result = EncodeDataset(raw, AllRows(5), opts);  // fit w/o row 5
  ASSERT_TRUE(result.ok());
  const EncodedDataset& d = *result;
  EXPECT_EQ(d.num_rows, 6u);
  // Field c0: values {1:3, 2:2} → both kept; 9 unseen → OOV.
  EXPECT_NE(d.cat(0, 0), Vocab::kOovId);
  EXPECT_EQ(d.cat(5, 0), Vocab::kOovId);
  EXPECT_EQ(d.cat_vocab_sizes[0], 3u);  // OOV + 2 values
}

TEST(EncoderTest, ContinuousMinMaxNormalized) {
  RawDataset raw = SmallRaw();
  EncoderOptions opts;
  auto result = EncodeDataset(raw, AllRows(5), opts);  // fit range [0,10]
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->cont(0, 0), 0.0f, 1e-6f);
  EXPECT_NEAR(result->cont(2, 0), 1.0f, 1e-6f);
  EXPECT_NEAR(result->cont(1, 0), 0.5f, 1e-6f);
  // Row 5 (100.0) is outside the fitted range → clamped to 1.
  EXPECT_NEAR(result->cont(5, 0), 1.0f, 1e-6f);
}

TEST(EncoderTest, RejectsEmptyFitRows) {
  RawDataset raw = SmallRaw();
  auto result = EncodeDataset(raw, {}, EncoderOptions{});
  EXPECT_FALSE(result.ok());
}

TEST(EncoderTest, RejectsOutOfRangeFitRow) {
  RawDataset raw = SmallRaw();
  auto result = EncodeDataset(raw, {100}, EncoderOptions{});
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kOutOfRange);
}

TEST(EncoderTest, PositiveRatio) {
  RawDataset raw = SmallRaw();
  auto result = EncodeDataset(raw, AllRows(6), EncoderOptions{});
  ASSERT_TRUE(result.ok());
  EXPECT_NEAR(result->PositiveRatio(), 0.5, 1e-9);
}

// ---------------------------------------------------------------------------
// Cross features
// ---------------------------------------------------------------------------

TEST(CrossTest, BuildsPerPairVocabs) {
  RawDataset raw = SmallRaw();
  EncoderOptions opts;
  opts.cat_min_count = 1;
  opts.cross_min_count = 1;
  auto result = EncodeDataset(raw, AllRows(6), opts);
  ASSERT_TRUE(result.ok());
  EncodedDataset d = std::move(result).value();
  ASSERT_TRUE(BuildCrossFeatures(&d, AllRows(6), opts).ok());
  EXPECT_TRUE(d.has_cross());
  EXPECT_EQ(d.cross_vocab_sizes.size(), 3u);
  // Pair (c0, c1) over 6 rows: distinct encoded pairs (1,10),(1,20),
  // (2,20),(2,10),(9,99) → 5 values + OOV.
  EXPECT_EQ(d.cross_vocab_sizes[0], 6u);
  // Rows 0 and 1 share the same (c0, c1) combination.
  EXPECT_EQ(d.cross(0, 0), d.cross(1, 0));
  EXPECT_NE(d.cross(0, 0), d.cross(2, 0));
}

TEST(CrossTest, MinCountPushesRareCombosToOov) {
  RawDataset raw = SmallRaw();
  EncoderOptions opts;
  opts.cat_min_count = 1;
  opts.cross_min_count = 2;
  auto result = EncodeDataset(raw, AllRows(6), opts);
  ASSERT_TRUE(result.ok());
  EncodedDataset d = std::move(result).value();
  ASSERT_TRUE(BuildCrossFeatures(&d, AllRows(6), opts).ok());
  // Only (1,10) appears twice in pair 0; everything else → OOV.
  EXPECT_EQ(d.cross_vocab_sizes[0], 2u);
  EXPECT_NE(d.cross(0, 0), Vocab::kOovId);
  EXPECT_EQ(d.cross(3, 0), Vocab::kOovId);
}

TEST(CrossTest, DoubleBuildRejected) {
  RawDataset raw = SmallRaw();
  EncoderOptions opts;
  auto result = EncodeDataset(raw, AllRows(6), opts);
  ASSERT_TRUE(result.ok());
  EncodedDataset d = std::move(result).value();
  ASSERT_TRUE(BuildCrossFeatures(&d, AllRows(6), opts).ok());
  EXPECT_FALSE(BuildCrossFeatures(&d, AllRows(6), opts).ok());
}

TEST(CrossTest, TotalsAggregate) {
  RawDataset raw = SmallRaw();
  EncoderOptions opts;
  opts.cat_min_count = 1;
  opts.cross_min_count = 1;
  auto result = EncodeDataset(raw, AllRows(6), opts);
  ASSERT_TRUE(result.ok());
  EncodedDataset d = std::move(result).value();
  ASSERT_TRUE(BuildCrossFeatures(&d, AllRows(6), opts).ok());
  size_t orig = 0;
  for (size_t v : d.cat_vocab_sizes) orig += v;
  EXPECT_EQ(d.TotalOrigVocab(), orig);
  size_t cross = 0;
  for (size_t v : d.cross_vocab_sizes) cross += v;
  EXPECT_EQ(d.TotalCrossVocab(), cross);
}

// ---------------------------------------------------------------------------
// Splits & Batcher
// ---------------------------------------------------------------------------

TEST(SplitsTest, SizesAndDisjointness) {
  Rng rng(1);
  Splits s = MakeSplits(1000, 0.7, 0.1, &rng);
  EXPECT_EQ(s.train.size(), 700u);
  EXPECT_EQ(s.val.size(), 100u);
  EXPECT_EQ(s.test.size(), 200u);
  std::set<size_t> all;
  for (auto& part : {s.train, s.val, s.test}) {
    for (size_t r : part) all.insert(r);
  }
  EXPECT_EQ(all.size(), 1000u);
}

TEST(SplitsTest, DeterministicForSeed) {
  Rng r1(7), r2(7);
  Splits a = MakeSplits(100, 0.8, 0.0, &r1);
  Splits b = MakeSplits(100, 0.8, 0.0, &r2);
  EXPECT_EQ(a.train, b.train);
}

TEST(SplitsTest, EmptyTrainSplitDiesAtCreation) {
  // With few rows, num_rows * train_frac truncates to zero; the seed let
  // that slide until TrainModel's CHECK(!splits.train.empty()) much later.
  // It must fail here, at split creation, with an actionable message.
  Rng rng(1);
  EXPECT_DEATH(MakeSplits(5, 0.1, 0.2, &rng), "empty train split");
}

TEST(SplitsTest, SingleRowTrainSplitSurvives) {
  Rng rng(1);
  Splits s = MakeSplits(2, 0.5, 0.0, &rng);
  EXPECT_EQ(s.train.size(), 1u);
  EXPECT_TRUE(s.val.empty());
  EXPECT_EQ(s.test.size(), 1u);
}

TEST(BatcherTest, CoversAllRowsEachEpoch) {
  RawDataset raw = SmallRaw();
  auto result = EncodeDataset(raw, AllRows(6), EncoderOptions{});
  ASSERT_TRUE(result.ok());
  EncodedDataset d = std::move(result).value();
  Batcher batcher(&d, {0, 1, 2, 3, 4, 5}, /*batch_size=*/4, /*seed=*/3);
  for (int epoch = 0; epoch < 3; ++epoch) {
    batcher.StartEpoch();
    std::multiset<size_t> seen;
    size_t batches = 0;
    for (;;) {
      Batch b = batcher.Next();
      if (b.size == 0) break;
      ++batches;
      EXPECT_LE(b.size, 4u);
      for (size_t k = 0; k < b.size; ++k) seen.insert(b.row(k));
    }
    EXPECT_EQ(batches, 2u);
    EXPECT_EQ(seen.size(), 6u);
    for (size_t r = 0; r < 6; ++r) EXPECT_EQ(seen.count(r), 1u);
  }
}

TEST(BatcherTest, ShuffleChangesOrderAcrossEpochs) {
  RawDataset raw = SmallRaw();
  auto result = EncodeDataset(raw, AllRows(6), EncoderOptions{});
  ASSERT_TRUE(result.ok());
  EncodedDataset d = std::move(result).value();
  std::vector<size_t> indices(64);
  std::iota(indices.begin(), indices.end(), 0);
  for (auto& r : indices) r %= 6;
  Batcher batcher(&d, indices, /*batch_size=*/64, /*seed=*/5);
  batcher.StartEpoch();
  Batch b1 = batcher.Next();
  std::vector<size_t> first(b1.rows, b1.rows + b1.size);
  batcher.StartEpoch();
  Batch b2 = batcher.Next();
  std::vector<size_t> second(b2.rows, b2.rows + b2.size);
  // A 64-element reshuffle repeating exactly has negligible probability.
  EXPECT_NE(first, second);
}

TEST(BatchTest, LabelAccessor) {
  RawDataset raw = SmallRaw();
  auto result = EncodeDataset(raw, AllRows(6), EncoderOptions{});
  ASSERT_TRUE(result.ok());
  EncodedDataset d = std::move(result).value();
  const size_t rows[] = {2, 3};
  Batch b;
  b.data = &d;
  b.rows = rows;
  b.size = 2;
  EXPECT_EQ(b.label(0), 1.0f);
  EXPECT_EQ(b.label(1), 0.0f);
}

}  // namespace
}  // namespace optinter
