// Checkpoint-state completeness: for every model, the tensors exposed by
// CollectState must account for exactly ParamCount() trainable floats —
// otherwise best-checkpoint restore and SaveModel/LoadModel would
// silently drop parameters.

#include <gtest/gtest.h>

#include "core/autofis.h"
#include "core/fixed_arch_model.h"
#include "core/search_model.h"
#include "core/zoo.h"
#include "test_data.h"

namespace optinter {
namespace {

using testing::HeadBatch;
using testing::SharedTinyData;

HyperParams TinyHp() {
  HyperParams hp = DefaultHyperParams("tiny");
  hp.seed = 44;
  return hp;
}

size_t StateSize(CtrModel* model) {
  std::vector<Tensor*> state;
  model->CollectState(&state);
  size_t total = 0;
  for (Tensor* t : state) total += t->size();
  return total;
}

class StateCompletenessTest : public ::testing::TestWithParam<std::string> {
};

TEST_P(StateCompletenessTest, CollectStateCoversEveryParameter) {
  const auto& p = SharedTinyData();
  auto model = CreateBaseline(GetParam(), p.data, TinyHp());
  ASSERT_TRUE(model.ok()) << model.status().ToString();
  EXPECT_EQ(StateSize(model->get()), (*model)->ParamCount()) << GetParam();
}

TEST_P(StateCompletenessTest, SnapshotRestoreIsExact) {
  // Copying the state out, perturbing the model by training, and copying
  // the state back must restore the original predictions bit-exactly —
  // this is precisely what the trainer's best-checkpoint logic does.
  const auto& p = SharedTinyData();
  auto model = CreateBaseline(GetParam(), p.data, TinyHp());
  ASSERT_TRUE(model.ok());
  Batch b = HeadBatch(p, 64);
  std::vector<float> before;
  (*model)->Predict(b, &before);

  std::vector<Tensor*> state;
  (*model)->CollectState(&state);
  std::vector<Tensor> snapshot;
  snapshot.reserve(state.size());
  for (Tensor* t : state) snapshot.push_back(*t);

  for (int i = 0; i < 5; ++i) (*model)->TrainStep(b);
  std::vector<float> perturbed;
  (*model)->Predict(b, &perturbed);
  bool changed = false;
  for (size_t i = 0; i < before.size(); ++i) {
    changed |= before[i] != perturbed[i];
  }
  EXPECT_TRUE(changed) << GetParam() << " did not train";

  for (size_t i = 0; i < state.size(); ++i) *state[i] = snapshot[i];
  std::vector<float> restored;
  (*model)->Predict(b, &restored);
  for (size_t i = 0; i < before.size(); ++i) {
    EXPECT_EQ(before[i], restored[i]) << GetParam();
  }
}

INSTANTIATE_TEST_SUITE_P(
    AllBaselines, StateCompletenessTest,
    ::testing::Values("LR", "Poly2", "FM", "FFM", "FwFM", "FmFM", "FNN",
                      "IPNN", "OPNN", "DeepFM", "PIN", "OptInter-F",
                      "OptInter-M"),
    [](const ::testing::TestParamInfo<std::string>& info) {
      std::string name = info.param;
      for (char& c : name) {
        if (c == '-') c = '_';
      }
      return name;
    });

TEST(StateCompletenessTest, SearchModelCoversEveryParameter) {
  const auto& p = SharedTinyData();
  SearchModel model(p.data, TinyHp());
  EXPECT_EQ(StateSize(&model), model.ParamCount());
}

TEST(StateCompletenessTest, AutoFisCoversEveryParameter) {
  const auto& p = SharedTinyData();
  AutoFisSearchModel model(p.data, TinyHp());
  EXPECT_EQ(StateSize(&model), model.ParamCount());
}

TEST(StateCompletenessTest, ThirdOrderFixedArchCoversEveryParameter) {
  // FixedArchModel with memorized triples must include the triple tables.
  auto p = SharedTinyData();  // copy: we add triple features
  EncodedDataset data = p.data;
  data.triple_ids.clear();
  data.triple_fields.clear();
  EncoderOptions opts;
  opts.cross_min_count = 2;
  ASSERT_TRUE(BuildTripleCrossFeatures(&data, p.splits.train, opts,
                                       {{0, 1, 2}, {1, 2, 3}})
                  .ok());
  FixedArchModel model(data, AllFactorize(data.num_pairs()), TinyHp(),
                       "3rd", {0, 1});
  EXPECT_EQ(StateSize(&model), model.ParamCount());
}

}  // namespace
}  // namespace optinter
