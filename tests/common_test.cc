#include <gtest/gtest.h>

#include <atomic>
#include <set>

#include "common/flags.h"
#include "common/rng.h"
#include "common/status.h"
#include "common/stopwatch.h"
#include "common/string_util.h"
#include "common/thread_pool.h"

namespace optinter {
namespace {

// ---------------------------------------------------------------------------
// Status / Result
// ---------------------------------------------------------------------------

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Invalid("bad field");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(s.message(), "bad field");
  EXPECT_EQ(s.ToString(), "INVALID_ARGUMENT: bad field");
}

TEST(StatusTest, AllFactoriesProduceDistinctCodes) {
  std::set<StatusCode> codes = {
      Status::Invalid("").code(),      Status::OutOfRange("").code(),
      Status::NotFound("").code(),     Status::AlreadyExists("").code(),
      Status::FailedPrecondition("").code(), Status::IoError("").code(),
      Status::Internal("").code(),     Status::Unimplemented("").code()};
  EXPECT_EQ(codes.size(), 8u);
}

TEST(StatusCodeTest, NamesAreStable) {
  EXPECT_STREQ(StatusCodeToString(StatusCode::kOk), "OK");
  EXPECT_STREQ(StatusCodeToString(StatusCode::kIoError), "IO_ERROR");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_TRUE(r.status().ok());
}

TEST(ResultTest, HoldsError) {
  Result<int> r(Status::NotFound("nope"));
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kNotFound);
}

TEST(ResultTest, MoveOutValue) {
  Result<std::string> r(std::string("hello"));
  std::string v = std::move(r).value();
  EXPECT_EQ(v, "hello");
}

Status FailingHelper() { return Status::IoError("disk"); }
Status PropagatingHelper() {
  OPTINTER_RETURN_NOT_OK(FailingHelper());
  return Status::OK();
}

TEST(ResultTest, ReturnNotOkMacroPropagates) {
  EXPECT_EQ(PropagatingHelper().code(), StatusCode::kIoError);
}

// ---------------------------------------------------------------------------
// String utilities
// ---------------------------------------------------------------------------

TEST(StringUtilTest, SplitBasic) {
  auto parts = Split("a,b,c", ',');
  ASSERT_EQ(parts.size(), 3u);
  EXPECT_EQ(parts[0], "a");
  EXPECT_EQ(parts[2], "c");
}

TEST(StringUtilTest, SplitKeepsEmptyFields) {
  auto parts = Split("a,,c,", ',');
  ASSERT_EQ(parts.size(), 4u);
  EXPECT_EQ(parts[1], "");
  EXPECT_EQ(parts[3], "");
}

TEST(StringUtilTest, SplitEmptyString) {
  auto parts = Split("", ',');
  ASSERT_EQ(parts.size(), 1u);
  EXPECT_EQ(parts[0], "");
}

TEST(StringUtilTest, JoinRoundTrip) {
  std::vector<std::string> parts = {"x", "y", "z"};
  EXPECT_EQ(Join(parts, "-"), "x-y-z");
  EXPECT_EQ(Join({}, "-"), "");
}

TEST(StringUtilTest, Trim) {
  EXPECT_EQ(Trim("  hi \t\n"), "hi");
  EXPECT_EQ(Trim(""), "");
  EXPECT_EQ(Trim("   "), "");
  EXPECT_EQ(Trim("a b"), "a b");
}

TEST(StringUtilTest, StartsWith) {
  EXPECT_TRUE(StartsWith("--flag", "--"));
  EXPECT_FALSE(StartsWith("-", "--"));
}

TEST(StringUtilTest, StrFormat) {
  EXPECT_EQ(StrFormat("%d-%s", 7, "x"), "7-x");
  EXPECT_EQ(StrFormat("%.2f", 1.2345), "1.23");
}

TEST(StringUtilTest, HumanCountMatchesPaperStyle) {
  EXPECT_EQ(HumanCount(500000), "0.5M");
  EXPECT_EQ(HumanCount(13000000), "13M");
  EXPECT_EQ(HumanCount(1012000000), "1012M");
  EXPECT_EQ(HumanCount(1234), "1234");
}

// ---------------------------------------------------------------------------
// Rng
// ---------------------------------------------------------------------------

TEST(RngTest, DeterministicForSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.NextUint64(), b.NextUint64());
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += a.NextUint64() == b.NextUint64();
  EXPECT_LT(same, 2);
}

TEST(RngTest, UniformInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double u = rng.Uniform();
    EXPECT_GE(u, 0.0);
    EXPECT_LT(u, 1.0);
  }
}

TEST(RngTest, UniformIntInRangeAndCoversAll) {
  Rng rng(9);
  std::set<uint64_t> seen;
  for (int i = 0; i < 1000; ++i) {
    const uint64_t v = rng.UniformInt(5);
    EXPECT_LT(v, 5u);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, GaussianMoments) {
  Rng rng(77);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gaussian();
    sum += g;
    sq += g * g;
  }
  EXPECT_NEAR(sum / n, 0.0, 0.02);
  EXPECT_NEAR(sq / n, 1.0, 0.03);
}

TEST(RngTest, GumbelMoments) {
  // Gumbel(0,1): mean = Euler-Mascheroni ≈ 0.5772, var = π²/6 ≈ 1.6449.
  Rng rng(78);
  const int n = 50000;
  double sum = 0.0, sq = 0.0;
  for (int i = 0; i < n; ++i) {
    const double g = rng.Gumbel();
    sum += g;
    sq += g * g;
  }
  const double mean = sum / n;
  const double var = sq / n - mean * mean;
  EXPECT_NEAR(mean, 0.5772, 0.03);
  EXPECT_NEAR(var, 1.6449, 0.08);
}

TEST(RngTest, BernoulliFrequency) {
  Rng rng(5);
  int hits = 0;
  for (int i = 0; i < 20000; ++i) hits += rng.Bernoulli(0.3);
  EXPECT_NEAR(hits / 20000.0, 0.3, 0.02);
}

TEST(RngTest, ShuffleIsPermutation) {
  Rng rng(11);
  std::vector<int> v = {0, 1, 2, 3, 4, 5, 6, 7, 8, 9};
  auto orig = v;
  rng.Shuffle(&v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(RngTest, ZipfHeadHeavy) {
  Rng rng(13);
  int head = 0;
  const int n = 10000;
  for (int i = 0; i < n; ++i) head += rng.Zipf(100, 1.2) < 5;
  // With exponent 1.2, the top-5 ranks carry far more than 5% of mass.
  EXPECT_GT(head, n / 4);
}

TEST(RngTest, CategoricalRespectsWeights) {
  Rng rng(17);
  std::vector<double> w = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 20000; ++i) ++counts[rng.Categorical(w)];
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.3);
}

// ---------------------------------------------------------------------------
// ThreadPool
// ---------------------------------------------------------------------------

TEST(ThreadPoolTest, ExecutesAllTasks) {
  ThreadPool pool(3);
  std::atomic<int> counter{0};
  for (int i = 0; i < 100; ++i) {
    pool.Submit([&counter] { counter.fetch_add(1); });
  }
  pool.Wait();
  EXPECT_EQ(counter.load(), 100);
}

TEST(ThreadPoolTest, ParallelForCoversRange) {
  std::vector<std::atomic<int>> hits(1000);
  ParallelFor(0, 1000, [&](size_t i) { hits[i].fetch_add(1); },
              /*grain=*/10);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, ParallelForChunksCoverExactly) {
  std::vector<std::atomic<int>> hits(5000);
  ParallelForChunks(
      0, 5000,
      [&](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i) hits[i].fetch_add(1);
      },
      /*min_chunk=*/64);
  for (auto& h : hits) EXPECT_EQ(h.load(), 1);
}

TEST(ThreadPoolTest, EmptyRangeIsNoop) {
  bool called = false;
  ParallelFor(5, 5, [&](size_t) { called = true; });
  EXPECT_FALSE(called);
}

// ---------------------------------------------------------------------------
// FlagParser
// ---------------------------------------------------------------------------

TEST(FlagsTest, DefaultsApply) {
  FlagParser flags;
  flags.AddInt("n", 42, "count");
  flags.AddString("name", "x", "name");
  flags.AddBool("fast", false, "speed");
  flags.AddDouble("rate", 0.5, "rate");
  char prog[] = "prog";
  char* argv[] = {prog};
  ASSERT_TRUE(flags.Parse(1, argv).ok());
  EXPECT_EQ(flags.GetInt("n"), 42);
  EXPECT_EQ(flags.GetString("name"), "x");
  EXPECT_FALSE(flags.GetBool("fast"));
  EXPECT_DOUBLE_EQ(flags.GetDouble("rate"), 0.5);
}

TEST(FlagsTest, EqualsAndSpaceSyntax) {
  FlagParser flags;
  flags.AddInt("a", 0, "");
  flags.AddInt("b", 0, "");
  char prog[] = "prog", f1[] = "--a=3", f2[] = "--b", f3[] = "7";
  char* argv[] = {prog, f1, f2, f3};
  ASSERT_TRUE(flags.Parse(4, argv).ok());
  EXPECT_EQ(flags.GetInt("a"), 3);
  EXPECT_EQ(flags.GetInt("b"), 7);
}

TEST(FlagsTest, BoolWithoutValue) {
  FlagParser flags;
  flags.AddBool("on", false, "");
  char prog[] = "prog", f1[] = "--on";
  char* argv[] = {prog, f1};
  ASSERT_TRUE(flags.Parse(2, argv).ok());
  EXPECT_TRUE(flags.GetBool("on"));
}

TEST(FlagsTest, UnknownFlagRejected) {
  FlagParser flags;
  char prog[] = "prog", f1[] = "--mystery=1";
  char* argv[] = {prog, f1};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagsTest, BadIntRejected) {
  FlagParser flags;
  flags.AddInt("n", 0, "");
  char prog[] = "prog", f1[] = "--n=abc";
  char* argv[] = {prog, f1};
  EXPECT_FALSE(flags.Parse(2, argv).ok());
}

TEST(FlagsTest, NegativeAndFloatValues) {
  FlagParser flags;
  flags.AddInt("n", 0, "");
  flags.AddDouble("x", 0, "");
  char prog[] = "prog", f1[] = "--n=-5", f2[] = "--x=1e-3";
  char* argv[] = {prog, f1, f2};
  ASSERT_TRUE(flags.Parse(3, argv).ok());
  EXPECT_EQ(flags.GetInt("n"), -5);
  EXPECT_DOUBLE_EQ(flags.GetDouble("x"), 1e-3);
}

TEST(FlagsTest, UsageMentionsFlags) {
  FlagParser flags;
  flags.AddInt("epochs", 3, "training epochs");
  const std::string usage = flags.Usage("prog");
  EXPECT_NE(usage.find("--epochs"), std::string::npos);
  EXPECT_NE(usage.find("training epochs"), std::string::npos);
}

TEST(StopwatchTest, MeasuresNonNegativeTime) {
  Stopwatch w;
  EXPECT_GE(w.Elapsed(), 0.0);
  w.Reset();
  EXPECT_GE(w.ElapsedMillis(), 0.0);
}

}  // namespace
}  // namespace optinter
