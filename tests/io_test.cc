#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>

#include "core/fixed_arch_model.h"
#include "core/zoo.h"
#include "io/serialize.h"
#include "test_data.h"

namespace optinter {
namespace {

using testing::HeadBatch;
using testing::SharedTinyData;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

HyperParams TinyHp() {
  HyperParams hp = DefaultHyperParams("tiny");
  hp.seed = 77;
  return hp;
}

TEST(SerializeTest, TensorRoundTrip) {
  Tensor a({3, 4});
  Tensor b({7});
  for (size_t i = 0; i < a.size(); ++i) a[i] = static_cast<float>(i) * 0.5f;
  for (size_t i = 0; i < b.size(); ++i) b[i] = -static_cast<float>(i);
  const std::string path = TempPath("tensors.bin");
  ASSERT_TRUE(SaveTensors(path, {&a, &b}).ok());

  Tensor a2({3, 4});
  Tensor b2({7});
  ASSERT_TRUE(LoadTensors(path, {&a2, &b2}).ok());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], a2[i]);
  for (size_t i = 0; i < b.size(); ++i) EXPECT_EQ(b[i], b2[i]);
}

TEST(SerializeTest, ShapeMismatchRejected) {
  Tensor a({2, 2});
  const std::string path = TempPath("shape.bin");
  ASSERT_TRUE(SaveTensors(path, {&a}).ok());
  Tensor wrong({4});
  EXPECT_FALSE(LoadTensors(path, {&wrong}).ok());
}

TEST(SerializeTest, CountMismatchRejected) {
  Tensor a({2});
  const std::string path = TempPath("count.bin");
  ASSERT_TRUE(SaveTensors(path, {&a}).ok());
  Tensor b({2}), c({2});
  EXPECT_FALSE(LoadTensors(path, {&b, &c}).ok());
}

TEST(SerializeTest, GarbageFileRejected) {
  const std::string path = TempPath("garbage.bin");
  std::ofstream(path) << "definitely not a checkpoint";
  Tensor t({1});
  Status st = LoadTensors(path, {&t});
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, MissingFileIsIoError) {
  Tensor t({1});
  Status st = LoadTensors(TempPath("no_such_file.bin"), {&t});
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

TEST(SerializeTest, ModelCheckpointRestoresPredictions) {
  const auto& p = SharedTinyData();
  const std::string path = TempPath("model.ckpt");
  Batch b = HeadBatch(p, 64);

  std::vector<float> trained_probs;
  {
    auto model = CreateBaseline("OptInter-M", p.data, TinyHp());
    ASSERT_TRUE(model.ok());
    for (int i = 0; i < 10; ++i) (*model)->TrainStep(b);
    (*model)->Predict(b, &trained_probs);
    ASSERT_TRUE(SaveModel(model->get(), path).ok());
  }
  // A fresh identically-constructed model differs before load, matches
  // after.
  auto fresh = CreateBaseline("OptInter-M", p.data, TinyHp());
  ASSERT_TRUE(fresh.ok());
  std::vector<float> fresh_probs;
  (*fresh)->Predict(b, &fresh_probs);
  bool differs = false;
  for (size_t i = 0; i < trained_probs.size(); ++i) {
    differs |= trained_probs[i] != fresh_probs[i];
  }
  EXPECT_TRUE(differs);
  ASSERT_TRUE(LoadModel(fresh->get(), path).ok());
  std::vector<float> loaded_probs;
  (*fresh)->Predict(b, &loaded_probs);
  for (size_t i = 0; i < trained_probs.size(); ++i) {
    EXPECT_FLOAT_EQ(trained_probs[i], loaded_probs[i]);
  }
}

TEST(SerializeTest, CrossModelLoadRejected) {
  const auto& p = SharedTinyData();
  const std::string path = TempPath("fnn.ckpt");
  auto fnn = CreateBaseline("FNN", p.data, TinyHp());
  ASSERT_TRUE(fnn.ok());
  ASSERT_TRUE(SaveModel(fnn->get(), path).ok());
  auto mem = CreateBaseline("OptInter-M", p.data, TinyHp());
  ASSERT_TRUE(mem.ok());
  EXPECT_FALSE(LoadModel(mem->get(), path).ok());
}

TEST(ArchIoTest, RoundTrip) {
  Architecture arch = {InterMethod::kMemorize, InterMethod::kNaive,
                       InterMethod::kFactorize, InterMethod::kMemorize};
  const std::string path = TempPath("arch.txt");
  ASSERT_TRUE(SaveArchitecture(arch, path).ok());
  auto loaded = LoadArchitecture(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, arch);
}

TEST(ArchIoTest, HumanReadableFormat) {
  Architecture arch = {InterMethod::kFactorize};
  const std::string path = TempPath("arch_fmt.txt");
  ASSERT_TRUE(SaveArchitecture(arch, path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "0 factorize");
}

TEST(ArchIoTest, MalformedRejected) {
  const std::string path = TempPath("bad_arch.txt");
  std::ofstream(path) << "0 memorize\n1 telepathize\n";
  EXPECT_FALSE(LoadArchitecture(path).ok());
}

TEST(ArchIoTest, OutOfOrderRejected) {
  const std::string path = TempPath("ooo_arch.txt");
  std::ofstream(path) << "1 memorize\n0 naive\n";
  EXPECT_FALSE(LoadArchitecture(path).ok());
}

TEST(ArchIoTest, EmptyRejected) {
  const std::string path = TempPath("empty_arch.txt");
  std::ofstream(path) << "\n\n";
  EXPECT_FALSE(LoadArchitecture(path).ok());
}

}  // namespace
}  // namespace optinter
