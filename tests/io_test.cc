#include <gtest/gtest.h>

#include <cstdint>
#include <cstdio>
#include <fstream>
#include <iterator>
#include <string>

#include "core/fixed_arch_model.h"
#include "core/zoo.h"
#include "io/serialize.h"
#include "test_data.h"

namespace optinter {
namespace {

using testing::HeadBatch;
using testing::SharedTinyData;

std::string TempPath(const std::string& name) {
  return ::testing::TempDir() + "/" + name;
}

HyperParams TinyHp() {
  HyperParams hp = DefaultHyperParams("tiny");
  hp.seed = 77;
  return hp;
}

TEST(SerializeTest, TensorRoundTrip) {
  Tensor a({3, 4});
  Tensor b({7});
  for (size_t i = 0; i < a.size(); ++i) a[i] = static_cast<float>(i) * 0.5f;
  for (size_t i = 0; i < b.size(); ++i) b[i] = -static_cast<float>(i);
  const std::string path = TempPath("tensors.bin");
  ASSERT_TRUE(SaveTensors(path, {&a, &b}).ok());

  Tensor a2({3, 4});
  Tensor b2({7});
  ASSERT_TRUE(LoadTensors(path, {&a2, &b2}).ok());
  for (size_t i = 0; i < a.size(); ++i) EXPECT_EQ(a[i], a2[i]);
  for (size_t i = 0; i < b.size(); ++i) EXPECT_EQ(b[i], b2[i]);
}

TEST(SerializeTest, ShapeMismatchRejected) {
  Tensor a({2, 2});
  const std::string path = TempPath("shape.bin");
  ASSERT_TRUE(SaveTensors(path, {&a}).ok());
  Tensor wrong({4});
  EXPECT_FALSE(LoadTensors(path, {&wrong}).ok());
}

TEST(SerializeTest, CountMismatchRejected) {
  Tensor a({2});
  const std::string path = TempPath("count.bin");
  ASSERT_TRUE(SaveTensors(path, {&a}).ok());
  Tensor b({2}), c({2});
  EXPECT_FALSE(LoadTensors(path, {&b, &c}).ok());
}

TEST(SerializeTest, GarbageFileRejected) {
  const std::string path = TempPath("garbage.bin");
  std::ofstream(path) << "definitely not a checkpoint";
  Tensor t({1});
  Status st = LoadTensors(path, {&t});
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
}

TEST(SerializeTest, MissingFileIsIoError) {
  Tensor t({1});
  Status st = LoadTensors(TempPath("no_such_file.bin"), {&t});
  EXPECT_EQ(st.code(), StatusCode::kIoError);
}

std::string ReadFileBytes(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  return std::string(std::istreambuf_iterator<char>(in),
                     std::istreambuf_iterator<char>());
}

void WriteFileBytes(const std::string& path, const std::string& bytes) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write(bytes.data(), static_cast<std::streamsize>(bytes.size()));
}

TEST(SerializeTest, TruncationAtAnyPointLeavesTargetsUntouched) {
  Tensor a({4, 4});
  Tensor b({8});
  for (size_t i = 0; i < a.size(); ++i) a[i] = static_cast<float>(i);
  for (size_t i = 0; i < b.size(); ++i) b[i] = 100.0f + static_cast<float>(i);
  const std::string path = TempPath("full.bin");
  ASSERT_TRUE(SaveTensors(path, {&a, &b}).ok());
  const std::string bytes = ReadFileBytes(path);
  ASSERT_GT(bytes.size(), 16u);

  const std::string trunc_path = TempPath("trunc.bin");
  // Cut inside the magic, the header, tensor 0's shape, tensor 0's data,
  // and tensor 1's data (one byte short). Every cut must fail cleanly AND
  // leave the destination tensors exactly as they were — no partial
  // overwrite of live model weights before the error surfaces.
  const size_t cuts[] = {2,  9,  13, 20, 30,
                         bytes.size() / 2, bytes.size() - 1};
  for (const size_t cut : cuts) {
    WriteFileBytes(trunc_path, bytes.substr(0, cut));
    Tensor a2({4, 4});
    Tensor b2({8});
    for (size_t i = 0; i < a2.size(); ++i) a2[i] = -7.5f;
    for (size_t i = 0; i < b2.size(); ++i) b2[i] = -7.5f;
    Status st = LoadTensors(trunc_path, {&a2, &b2});
    EXPECT_FALSE(st.ok()) << "cut at " << cut;
    for (size_t i = 0; i < a2.size(); ++i) {
      ASSERT_EQ(a2[i], -7.5f) << "cut at " << cut << " wrote tensor 0";
    }
    for (size_t i = 0; i < b2.size(); ++i) {
      ASSERT_EQ(b2[i], -7.5f) << "cut at " << cut << " wrote tensor 1";
    }
  }
}

TEST(SerializeTest, TrailingGarbageRejected) {
  Tensor a({3});
  const std::string path = TempPath("trailing.bin");
  ASSERT_TRUE(SaveTensors(path, {&a}).ok());
  std::string bytes = ReadFileBytes(path);
  bytes += "junk";
  WriteFileBytes(path, bytes);
  Tensor a2({3});
  Status st = LoadTensors(path, {&a2});
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("trailing"), std::string::npos);
}

TEST(SerializeTest, AbsurdShapeRejectedWithoutAllocation) {
  // Hand-craft a header claiming a preposterous tensor: the loader must
  // report a clean mismatch, not try to materialize the claimed dims.
  const std::string path = TempPath("absurd.bin");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write("OPTI", 4);
  const uint32_t version = 1;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const uint64_t count = 1;
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  const uint32_t ndim = 2;
  out.write(reinterpret_cast<const char*>(&ndim), sizeof(ndim));
  const uint64_t huge = 1ull << 40;
  out.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  out.write(reinterpret_cast<const char*>(&huge), sizeof(huge));
  out.close();
  Tensor t({2, 2});
  Status st = LoadTensors(path, {&t});
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("mismatch"), std::string::npos);
}

TEST(SerializeTest, AbsurdDimCountRejected) {
  const std::string path = TempPath("absurd_ndim.bin");
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  out.write("OPTI", 4);
  const uint32_t version = 1;
  out.write(reinterpret_cast<const char*>(&version), sizeof(version));
  const uint64_t count = 1;
  out.write(reinterpret_cast<const char*>(&count), sizeof(count));
  const uint32_t ndim = 4000000000u;  // garbage stream read as a shape
  out.write(reinterpret_cast<const char*>(&ndim), sizeof(ndim));
  out.close();
  Tensor t({2});
  Status st = LoadTensors(path, {&t});
  EXPECT_EQ(st.code(), StatusCode::kInvalidArgument);
  EXPECT_NE(st.message().find("dimensions"), std::string::npos);
}

TEST(SerializeTest, ModelCheckpointRestoresPredictions) {
  const auto& p = SharedTinyData();
  const std::string path = TempPath("model.ckpt");
  Batch b = HeadBatch(p, 64);

  std::vector<float> trained_probs;
  {
    auto model = CreateBaseline("OptInter-M", p.data, TinyHp());
    ASSERT_TRUE(model.ok());
    for (int i = 0; i < 10; ++i) (*model)->TrainStep(b);
    (*model)->Predict(b, &trained_probs);
    ASSERT_TRUE(SaveModel(model->get(), path).ok());
  }
  // A fresh identically-constructed model differs before load, matches
  // after.
  auto fresh = CreateBaseline("OptInter-M", p.data, TinyHp());
  ASSERT_TRUE(fresh.ok());
  std::vector<float> fresh_probs;
  (*fresh)->Predict(b, &fresh_probs);
  bool differs = false;
  for (size_t i = 0; i < trained_probs.size(); ++i) {
    differs |= trained_probs[i] != fresh_probs[i];
  }
  EXPECT_TRUE(differs);
  ASSERT_TRUE(LoadModel(fresh->get(), path).ok());
  std::vector<float> loaded_probs;
  (*fresh)->Predict(b, &loaded_probs);
  for (size_t i = 0; i < trained_probs.size(); ++i) {
    EXPECT_FLOAT_EQ(trained_probs[i], loaded_probs[i]);
  }
}

TEST(SerializeTest, CrossModelLoadRejected) {
  const auto& p = SharedTinyData();
  const std::string path = TempPath("fnn.ckpt");
  auto fnn = CreateBaseline("FNN", p.data, TinyHp());
  ASSERT_TRUE(fnn.ok());
  ASSERT_TRUE(SaveModel(fnn->get(), path).ok());
  auto mem = CreateBaseline("OptInter-M", p.data, TinyHp());
  ASSERT_TRUE(mem.ok());
  EXPECT_FALSE(LoadModel(mem->get(), path).ok());
}

TEST(ArchIoTest, RoundTrip) {
  Architecture arch = {InterMethod::kMemorize, InterMethod::kNaive,
                       InterMethod::kFactorize, InterMethod::kMemorize};
  const std::string path = TempPath("arch.txt");
  ASSERT_TRUE(SaveArchitecture(arch, path).ok());
  auto loaded = LoadArchitecture(path);
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(*loaded, arch);
}

TEST(ArchIoTest, HumanReadableFormat) {
  Architecture arch = {InterMethod::kFactorize};
  const std::string path = TempPath("arch_fmt.txt");
  ASSERT_TRUE(SaveArchitecture(arch, path).ok());
  std::ifstream in(path);
  std::string line;
  std::getline(in, line);
  EXPECT_EQ(line, "0 factorize");
}

TEST(ArchIoTest, MalformedRejected) {
  const std::string path = TempPath("bad_arch.txt");
  std::ofstream(path) << "0 memorize\n1 telepathize\n";
  EXPECT_FALSE(LoadArchitecture(path).ok());
}

TEST(ArchIoTest, OutOfOrderRejected) {
  const std::string path = TempPath("ooo_arch.txt");
  std::ofstream(path) << "1 memorize\n0 naive\n";
  EXPECT_FALSE(LoadArchitecture(path).ok());
}

TEST(ArchIoTest, EmptyRejected) {
  const std::string path = TempPath("empty_arch.txt");
  std::ofstream(path) << "\n\n";
  EXPECT_FALSE(LoadArchitecture(path).ok());
}

}  // namespace
}  // namespace optinter
