// Tests for the quantized inference path and the runtime kernel dispatch
// layer:
//
//  * QuantizedTable round-trips: int8 per-row affine error bound
//    (≤ 1.5·scale: half-step rounding plus at most one step of edge
//    clamping), constant-row exactness, bf16 relative error, row-byte
//    accounting;
//  * int8 GEMM property sweep vs a plain integer/double reference over
//    the same odd-shape grid the fp32 GEMM tests use, plus exact
//    accumulator equality across every compiled-in dispatch backend (the
//    integer path is associative, so "close" would be a bug — it must be
//    EQUAL);
//  * dispatch selection: available backends are well-formed, the test
//    hook swaps tables, unknown names are rejected, and the dispatched
//    fp32 GEMMs agree across backends on exactly-representable inputs;
//  * 2-D chunk-grid determinism: tall-skinny GemmNN/NT are bitwise
//    identical at 1, 2, and 8 threads;
//  * QuantizeSnapshot: int8/bf16 models track the fp32 model's
//    probabilities, reject wrong model kinds, and refuse TrainStep.

#include <gtest/gtest.h>

#include <cmath>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <random>
#include <set>
#include <string>
#include <vector>

#include "core/fixed_arch_model.h"
#include "nn/embedding.h"
#include "nn/quant_embedding.h"
#include "serve/quantized_model.h"
#include "serve/request.h"
#include "serve/server.h"
#include "serve/snapshot.h"
#include "tensor/dispatch.h"
#include "tensor/int8.h"
#include "tensor/kernels.h"
#include "common/thread_pool.h"
#include "test_data.h"

namespace optinter {
namespace {

using serve::QuantizedFixedArchModel;
using serve::QuantizeSnapshot;
using testing::SharedTinyData;

// Restores the global pool size when a test returns.
struct PoolGuard {
  size_t saved = ThreadPool::Global().num_threads();
  ~PoolGuard() { ThreadPool::SetGlobalThreads(saved); }
};

// Restores auto dispatch selection when a test returns.
struct BackendGuard {
  ~BackendGuard() { SelectKernelBackendForTest("auto"); }
};

EmbeddingTable RandomTable(size_t vocab, size_t dim, uint64_t seed,
                           double stddev = 0.1) {
  EmbeddingTable t("t", vocab, dim, /*lr=*/0.01f, /*l2=*/0.0f);
  Rng rng(seed);
  t.Init(&rng, stddev);
  return t;
}

// ---------------------------------------------------------------------------
// QuantizedTable round-trips.
// ---------------------------------------------------------------------------

TEST(QuantizedTableTest, Int8RoundTripWithinPerRowBound) {
  const size_t vocab = 64, dim = 16;
  EmbeddingTable t = RandomTable(vocab, dim, 991);
  QuantizedTable q(t, QuantMode::kInt8);
  ASSERT_EQ(q.vocab_size(), vocab);
  ASSERT_EQ(q.dim(), dim);
  std::vector<float> out(dim);
  for (size_t r = 0; r < vocab; ++r) {
    const int32_t id = static_cast<int32_t>(r);
    q.DequantRow(id, out.data());
    const float* ref = t.Row(id);
    // Half a step of rounding plus at most one step lost to clamping the
    // zero-point at the range edge.
    const float bound = 1.5f * q.RowScale(id);
    for (size_t d = 0; d < dim; ++d) {
      ASSERT_NEAR(out[d], ref[d], bound) << "row " << r << " dim " << d;
    }
  }
}

TEST(QuantizedTableTest, Int8ConstantRowsAreExact) {
  EmbeddingTable t("t", 3, 8, 0.01f, 0.0f);  // zero-initialized
  for (size_t d = 0; d < 8; ++d) {
    t.MutableRow(1)[d] = 0.75f;
    t.MutableRow(2)[d] = -2.5f;
  }
  QuantizedTable q(t, QuantMode::kInt8);
  std::vector<float> out(8);
  q.DequantRow(0, out.data());
  for (float v : out) EXPECT_EQ(v, 0.0f);
  q.DequantRow(1, out.data());
  for (float v : out) EXPECT_FLOAT_EQ(v, 0.75f);
  q.DequantRow(2, out.data());
  for (float v : out) EXPECT_FLOAT_EQ(v, -2.5f);
}

TEST(QuantizedTableTest, Bf16RoundTripWithinRelativeBound) {
  const size_t vocab = 64, dim = 16;
  EmbeddingTable t = RandomTable(vocab, dim, 313);
  QuantizedTable q(t, QuantMode::kBf16);
  std::vector<float> out(dim);
  for (size_t r = 0; r < vocab; ++r) {
    const int32_t id = static_cast<int32_t>(r);
    q.DequantRow(id, out.data());
    const float* ref = t.Row(id);
    for (size_t d = 0; d < dim; ++d) {
      // bf16 keeps 8 mantissa bits (7 stored + implicit); the half-ULP
      // round-to-nearest error is ≤ 2^-8 relative.
      ASSERT_NEAR(out[d], ref[d],
                  std::fabs(ref[d]) * (1.0f / 256.0f) + 1e-30f)
          << "row " << r << " dim " << d;
    }
  }
}

TEST(QuantizedTableTest, RowBytesMatchScheme) {
  EmbeddingTable t = RandomTable(4, 16, 7);
  QuantizedTable q8(t, QuantMode::kInt8);
  QuantizedTable q16(t, QuantMode::kBf16);
  // int8: dim bytes of payload + fp32 scale + int8 zero-point.
  EXPECT_EQ(q8.RowBytes(), 16u + 4u + 1u);
  EXPECT_EQ(q16.RowBytes(), 32u);
  // fp32 is 64 bytes/row → the committed ≥3× (int8) and 2× (bf16)
  // footprint claims at dim 16.
  EXPECT_GE(64.0 / static_cast<double>(q8.RowBytes()), 3.0);
  EXPECT_EQ(64.0 / static_cast<double>(q16.RowBytes()), 2.0);
}

TEST(QuantizedTableTest, Bf16ConversionRoundsToNearestEven) {
  EXPECT_EQ(FloatToBf16(0.0f), 0u);
  EXPECT_EQ(FloatToBf16(1.0f), 0x3f80u);
  EXPECT_EQ(FloatToBf16(-2.0f), 0xc000u);
  // 1.0 + 2^-9 is exactly between bf16(1.0) and the next value up; ties
  // go to even (the 1.0 encoding has an even mantissa).
  EXPECT_EQ(FloatToBf16(1.0f + 1.0f / 512.0f), 0x3f80u);
}

// ---------------------------------------------------------------------------
// int8 GEMM property sweep + cross-backend exactness.
// ---------------------------------------------------------------------------

struct QuantGemmCase {
  size_t m, k, n;
};

std::vector<QuantGemmCase> QuantGemmCases() {
  std::vector<QuantGemmCase> cases;
  for (size_t m : {1, 3, 7, 17}) {
    for (size_t k : {1, 5, 17, 64, 129}) {
      for (size_t n : {1, 3, 16, 33}) cases.push_back({m, k, n});
    }
  }
  return cases;
}

TEST(Int8GemmTest, MatchesDequantizedReferenceOverShapeSweep) {
  std::mt19937 rng(20260808);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  for (const QuantGemmCase& gc : QuantGemmCases()) {
    std::vector<float> x(gc.m * gc.k), w(gc.n * gc.k), bias(gc.n);
    for (float& v : x) v = dist(rng);
    for (float& v : w) v = dist(rng);
    for (float& v : bias) v = dist(rng);

    std::vector<uint8_t> qa(gc.m * gc.k);
    std::vector<float> sa(gc.m);
    std::vector<int32_t> za(gc.m);
    QuantizeActivationRows(x.data(), gc.m, gc.k, qa.data(), sa.data(),
                           za.data());
    std::vector<int8_t> qw(gc.n * gc.k);
    std::vector<float> sw(gc.n);
    std::vector<int32_t> rowsum(gc.n);
    QuantizeWeightsPerRow(w.data(), gc.n, gc.k, qw.data(), sw.data(),
                          rowsum.data());

    std::vector<float> c(gc.m * gc.n);
    Int8GemmNT(qa.data(), sa.data(), za.data(), qw.data(), sw.data(),
               rowsum.data(), bias.data(), c.data(), gc.m, gc.k, gc.n);

    for (size_t i = 0; i < gc.m; ++i) {
      for (size_t j = 0; j < gc.n; ++j) {
        // Reference: dequantize every element and accumulate in double —
        // the quantized GEMM must match it to fp32 rounding, because both
        // compute the same integer sum before one float epilogue.
        double acc = 0.0;
        for (size_t p = 0; p < gc.k; ++p) {
          const double da =
              sa[i] * (static_cast<double>(qa[i * gc.k + p]) - za[i]);
          const double dw = sw[j] * static_cast<double>(qw[j * gc.k + p]);
          acc += da * dw;
        }
        acc += bias[j];
        ASSERT_NEAR(c[i * gc.n + j], acc,
                    1e-5 * (1.0 + std::sqrt(static_cast<double>(gc.k))))
            << "m=" << gc.m << " k=" << gc.k << " n=" << gc.n;
      }
    }
  }
}

TEST(Int8GemmTest, AccumulatorsExactlyEqualAcrossAllBackends) {
  std::mt19937 rng(4711);
  std::uniform_int_distribution<int> act(0, 127);
  std::uniform_int_distribution<int> wt(-127, 127);
  const std::vector<const KernelTable*> backends = AvailableKernelBackends();
  ASSERT_FALSE(backends.empty());
  for (const QuantGemmCase& gc : QuantGemmCases()) {
    std::vector<uint8_t> a(gc.m * gc.k);
    std::vector<int8_t> b(gc.n * gc.k);
    for (auto& v : a) v = static_cast<uint8_t>(act(rng));
    for (auto& v : b) v = static_cast<int8_t>(wt(rng));
    std::vector<int32_t> ref(gc.m * gc.n);
    backends[0]->int8_gemm_nt_acc(a.data(), b.data(), ref.data(), gc.m,
                                  gc.k, gc.n);
    // Sanity against a plain loop (int64 cannot overflow here).
    for (size_t i = 0; i < gc.m; ++i) {
      for (size_t j = 0; j < gc.n; ++j) {
        int64_t acc = 0;
        for (size_t p = 0; p < gc.k; ++p) {
          acc += static_cast<int64_t>(a[i * gc.k + p]) * b[j * gc.k + p];
        }
        ASSERT_EQ(ref[i * gc.n + j], acc);
      }
    }
    std::vector<int32_t> got(gc.m * gc.n);
    for (const KernelTable* table : backends) {
      got.assign(got.size(), -1);
      table->int8_gemm_nt_acc(a.data(), b.data(), got.data(), gc.m, gc.k,
                              gc.n);
      ASSERT_EQ(std::memcmp(got.data(), ref.data(),
                            got.size() * sizeof(int32_t)),
                0)
          << "backend " << table->name << " m=" << gc.m << " k=" << gc.k
          << " n=" << gc.n;
    }
  }
}

TEST(Int8GemmTest, DequantRowsBitwiseEqualAcrossAllBackends) {
  std::mt19937 rng(99);
  std::uniform_int_distribution<int> qv(-128, 127);
  const size_t dim = 37;  // odd: exercises every backend's tail handling
  std::vector<int8_t> q(dim);
  for (auto& v : q) v = static_cast<int8_t>(qv(rng));
  std::vector<uint16_t> qb(dim);
  for (auto& v : qb) v = static_cast<uint16_t>(rng() & 0x7fff);
  const std::vector<const KernelTable*> backends = AvailableKernelBackends();
  std::vector<float> ref_i8(dim), ref_bf(dim), out(dim);
  backends[0]->dequant_row_i8(q.data(), 0.0625f, -7, dim, ref_i8.data());
  backends[0]->dequant_row_bf16(qb.data(), dim, ref_bf.data());
  for (const KernelTable* table : backends) {
    table->dequant_row_i8(q.data(), 0.0625f, -7, dim, out.data());
    EXPECT_EQ(std::memcmp(out.data(), ref_i8.data(), dim * sizeof(float)),
              0)
        << table->name;
    table->dequant_row_bf16(qb.data(), dim, out.data());
    EXPECT_EQ(std::memcmp(out.data(), ref_bf.data(), dim * sizeof(float)),
              0)
        << table->name;
  }
}

// ---------------------------------------------------------------------------
// Dispatch selection.
// ---------------------------------------------------------------------------

TEST(DispatchTest, AvailableBackendsAreWellFormed) {
  const std::vector<const KernelTable*> backends = AvailableKernelBackends();
  ASSERT_FALSE(backends.empty());
  std::set<std::string> names;
  for (const KernelTable* t : backends) {
    ASSERT_NE(t, nullptr);
    EXPECT_TRUE(names.insert(t->name).second)
        << "duplicate backend " << t->name;
    EXPECT_NE(t->gemm_nn, nullptr);
    EXPECT_NE(t->gemm_nt, nullptr);
    EXPECT_NE(t->gemm_tn, nullptr);
    EXPECT_NE(t->sigmoid, nullptr);
    EXPECT_NE(t->int8_gemm_nt_acc, nullptr);
    EXPECT_NE(t->dequant_row_i8, nullptr);
    EXPECT_NE(t->dequant_row_bf16, nullptr);
  }
  // The active table is one of the available ones.
  EXPECT_TRUE(names.count(ActiveKernelBackend()));
}

TEST(DispatchTest, TestHookSwapsTablesAndRejectsUnknownNames) {
  BackendGuard guard;
  for (const KernelTable* t : AvailableKernelBackends()) {
    ASSERT_TRUE(SelectKernelBackendForTest(t->name));
    EXPECT_STREQ(ActiveKernelBackend(), t->name);
    EXPECT_EQ(&ActiveKernels(), t);
  }
  const std::string before = ActiveKernelBackend();
  EXPECT_FALSE(SelectKernelBackendForTest("not-a-backend"));
  EXPECT_EQ(ActiveKernelBackend(), before);  // unchanged on rejection
  EXPECT_TRUE(SelectKernelBackendForTest("auto"));
}

TEST(DispatchTest, GemmAgreesAcrossBackendsOnExactInputs) {
  // Small integer entries: every product and partial sum is exactly
  // representable, so accumulation order / FMA contraction cannot change
  // the result — all backends must agree EXACTLY.
  std::mt19937 rng(61);
  std::uniform_int_distribution<int> dist(-3, 3);
  const size_t m = 23, k = 40, n = 19;
  std::vector<float> a(m * k), bn(k * n), bt(n * k);
  for (auto& v : a) v = static_cast<float>(dist(rng));
  for (auto& v : bn) v = static_cast<float>(dist(rng));
  for (auto& v : bt) v = static_cast<float>(dist(rng));
  const std::vector<const KernelTable*> backends = AvailableKernelBackends();
  std::vector<float> ref_nn(m * n), ref_nt(m * n), out(m * n);
  backends[0]->gemm_nn(a.data(), bn.data(), ref_nn.data(), m, k, n, 1.0f,
                       0.0f);
  backends[0]->gemm_nt(a.data(), bt.data(), ref_nt.data(), m, k, n, 1.0f,
                       0.0f);
  for (const KernelTable* table : backends) {
    out.assign(out.size(), -1.0f);
    table->gemm_nn(a.data(), bn.data(), out.data(), m, k, n, 1.0f, 0.0f);
    EXPECT_EQ(std::memcmp(out.data(), ref_nn.data(),
                          out.size() * sizeof(float)),
              0)
        << "gemm_nn " << table->name;
    out.assign(out.size(), -1.0f);
    table->gemm_nt(a.data(), bt.data(), out.data(), m, k, n, 1.0f, 0.0f);
    EXPECT_EQ(std::memcmp(out.data(), ref_nt.data(),
                          out.size() * sizeof(float)),
              0)
        << "gemm_nt " << table->name;
  }
}

// ---------------------------------------------------------------------------
// 2-D chunk-grid determinism (tall-skinny shapes, satellite of the
// dispatch PR: the m×n grid must not change results with the thread
// count).
// ---------------------------------------------------------------------------

TEST(ChunkGridTest, TallSkinnyGemmBitIdenticalAcrossThreadCounts) {
  PoolGuard guard;
  std::mt19937 rng(20260807);
  std::uniform_real_distribution<float> dist(-1.0f, 1.0f);
  // Tall-skinny: m huge, n a couple of panels, k past the packing cutoff.
  // m*k*n*2 > kParallelFlops so the parallel grid actually engages.
  const size_t m = 1024, k = 64, n = 48;
  std::vector<float> a(m * k), bn(k * n), bt(n * k);
  for (auto& v : a) v = dist(rng);
  for (auto& v : bn) v = dist(rng);
  for (auto& v : bt) v = dist(rng);

  ThreadPool::SetGlobalThreads(1);
  std::vector<float> ref_nn(m * n, 0.0f), ref_nt(m * n, 0.0f);
  GemmNN(a.data(), bn.data(), ref_nn.data(), m, k, n, 1.0f, 0.0f);
  GemmNT(a.data(), bt.data(), ref_nt.data(), m, k, n, 1.0f, 0.0f);

  for (size_t threads : {2u, 8u}) {
    ThreadPool::SetGlobalThreads(threads);
    std::vector<float> c(m * n, 0.0f);
    GemmNN(a.data(), bn.data(), c.data(), m, k, n, 1.0f, 0.0f);
    EXPECT_EQ(
        std::memcmp(c.data(), ref_nn.data(), c.size() * sizeof(float)), 0)
        << "GemmNN threads=" << threads;
    c.assign(c.size(), 0.0f);
    GemmNT(a.data(), bt.data(), c.data(), m, k, n, 1.0f, 0.0f);
    EXPECT_EQ(
        std::memcmp(c.data(), ref_nt.data(), c.size() * sizeof(float)), 0)
        << "GemmNT threads=" << threads;
  }
}

// ---------------------------------------------------------------------------
// QuantizeSnapshot + QuantizedFixedArchModel.
// ---------------------------------------------------------------------------

HyperParams QuantHp() {
  HyperParams hp = DefaultHyperParams("tiny");
  hp.seed = 1234;
  return hp;
}

std::shared_ptr<const CtrModel> TrainedFp32(int steps) {
  const auto& p = SharedTinyData();
  auto model = FixedArchModel::MakeOptInterM(p.data, QuantHp());
  Batch b = testing::HeadBatch(p, 128);
  for (int i = 0; i < steps; ++i) model->TrainStep(b);
  return std::shared_ptr<const CtrModel>(std::move(model));
}

TEST(QuantizeSnapshotTest, RejectsNullAndWrongModelKind) {
  std::shared_ptr<const CtrModel> out;
  EXPECT_EQ(QuantizeSnapshot(nullptr, QuantMode::kInt8, &out).code(),
            StatusCode::kInvalidArgument);

  class NotFixedArch : public CtrModel {
   public:
    std::string Name() const override { return "other"; }
    float TrainStep(const Batch&) override { return 0.0f; }
    void Predict(const Batch& b, std::vector<float>* probs) override {
      probs->assign(b.size, 0.5f);
    }
    size_t ParamCount() const override { return 0; }
  };
  EXPECT_EQ(QuantizeSnapshot(std::make_shared<NotFixedArch>(),
                             QuantMode::kInt8, &out)
                .code(),
            StatusCode::kInvalidArgument);
}

TEST(QuantizeSnapshotTest, QuantizedModelsTrackFp32Probabilities) {
  const auto& p = SharedTinyData();
  std::shared_ptr<const CtrModel> fp32 = TrainedFp32(10);
  std::shared_ptr<const CtrModel> m8, m16;
  ASSERT_TRUE(QuantizeSnapshot(fp32, QuantMode::kInt8, &m8).ok());
  ASSERT_TRUE(QuantizeSnapshot(fp32, QuantMode::kBf16, &m16).ok());
  EXPECT_TRUE(m8->SupportsReentrantPredict());
  EXPECT_NE(m8->Name().find("int8"), std::string::npos);
  EXPECT_NE(m16->Name().find("bf16"), std::string::npos);

  Batch b;
  b.data = &p.data;
  b.rows = p.splits.test.data();
  b.size = std::min<size_t>(256, p.splits.test.size());
  ForwardContext ctx;
  std::vector<float> probs_fp32, probs_8, probs_16;
  fp32->Predict(b, &probs_fp32, &ctx);
  m8->Predict(b, &probs_8, &ctx);
  m16->Predict(b, &probs_16, &ctx);
  ASSERT_EQ(probs_8.size(), b.size);
  ASSERT_EQ(probs_16.size(), b.size);
  double max8 = 0.0, max16 = 0.0, sum8 = 0.0;
  for (size_t i = 0; i < b.size; ++i) {
    const double d8 = std::fabs(probs_8[i] - probs_fp32[i]);
    max8 = std::max(max8, d8);
    sum8 += d8;
    max16 = std::max<double>(max16, std::fabs(probs_16[i] - probs_fp32[i]));
  }
  // int8 carries embedding + activation + weight rounding, and the tiny
  // model's dim-4/8 embeddings make each quantization step relatively
  // coarse — individual rows can move visibly, but the bulk must track.
  EXPECT_LT(max8, 0.3);
  EXPECT_LT(sum8 / b.size, 0.03);
  // bf16 is only a mantissa truncation and must sit much closer.
  EXPECT_LT(max16, 0.01);
  EXPECT_GT(max8, 0.0);  // it IS a different numeric path
}

TEST(QuantizeSnapshotTest, FootprintShrinksAndParamCountIsSourced) {
  // Byte-count arithmetic below assumes remap-free tables: under a global
  // tiered override the shared id->row remap (vocab x 4 B, counted in
  // EmbeddingBytes but not in the backing-row-only Fp32EmbeddingBytes)
  // dominates at the tiny profile's dims and voids the comparisons.
  if (const char* bk = std::getenv("OPTINTER_EMBED_BACKEND");
      bk != nullptr && std::strcmp(bk, "tiered") == 0) {
    GTEST_SKIP() << "remap bytes dominate tiny-profile footprints";
  }
  std::shared_ptr<const CtrModel> fp32 = TrainedFp32(3);
  std::shared_ptr<const CtrModel> m8, m16;
  ASSERT_TRUE(QuantizeSnapshot(fp32, QuantMode::kInt8, &m8).ok());
  ASSERT_TRUE(QuantizeSnapshot(fp32, QuantMode::kBf16, &m16).ok());
  const auto* q8 = dynamic_cast<const QuantizedFixedArchModel*>(m8.get());
  const auto* q16 = dynamic_cast<const QuantizedFixedArchModel*>(m16.get());
  ASSERT_NE(q8, nullptr);
  ASSERT_NE(q16, nullptr);
  // NOTE: int8 is not asserted below bf16 — at the tiny profile's dim-4
  // cross tables the 5-byte per-row header makes an int8 row (9 B) cost
  // more than a bf16 row (8 B); the ≥3× int8 claim holds at serving dims
  // (see RowBytesMatchScheme and BENCH_quantized.json).
  EXPECT_LT(q8->EmbeddingBytes(), q8->Fp32EmbeddingBytes());
  EXPECT_LT(q16->EmbeddingBytes(), q16->Fp32EmbeddingBytes());
  EXPECT_EQ(q16->EmbeddingBytes() * 2, q16->Fp32EmbeddingBytes());
  EXPECT_EQ(m8->ParamCount(), fp32->ParamCount());
}

TEST(QuantizeSnapshotDeathTest, TrainStepRefusesToRun) {
  std::shared_ptr<const CtrModel> fp32 = TrainedFp32(1);
  std::shared_ptr<const CtrModel> m8;
  ASSERT_TRUE(QuantizeSnapshot(fp32, QuantMode::kInt8, &m8).ok());
  const auto& p = SharedTinyData();
  Batch b = testing::HeadBatch(p, 4);
  auto* mutable_model = const_cast<CtrModel*>(m8.get());
  EXPECT_DEATH(mutable_model->TrainStep(b), "inference-only");
}

TEST(QuantizeSnapshotTest, ServesThroughPredictServer) {
  const auto& p = SharedTinyData();
  std::shared_ptr<const CtrModel> fp32 = TrainedFp32(5);
  std::shared_ptr<const CtrModel> m8;
  ASSERT_TRUE(QuantizeSnapshot(fp32, QuantMode::kInt8, &m8).ok());

  serve::PredictServer server(p.data);
  ASSERT_TRUE(server.Deploy(m8).ok());
  // PredictNow through the server must equal a direct Predict on the
  // quantized model bitwise (same snapshot, same batch-1 path contract).
  Batch b;
  b.data = &p.data;
  b.rows = p.splits.test.data();
  b.size = 16;
  ForwardContext ctx;
  std::vector<float> direct;
  m8->Predict(b, &direct, &ctx);
  for (size_t k = 0; k < b.size; ++k) {
    auto r =
        server.PredictNow(serve::RequestFromRow(p.data, p.splits.test[k]));
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, direct[k]) << "row " << k;
  }
}

}  // namespace
}  // namespace optinter
