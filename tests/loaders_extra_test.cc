// Tests for the libsvm loader, AUC confidence intervals, and negative
// downsampling.

#include <gtest/gtest.h>

#include <fstream>
#include <numeric>

#include "common/rng.h"
#include "data/batch.h"
#include "data/libsvm_loader.h"
#include "metrics/metrics.h"
#include "test_data.h"

namespace optinter {
namespace {

std::string WriteTemp(const std::string& name, const std::string& body) {
  const std::string path = ::testing::TempDir() + "/" + name;
  std::ofstream(path) << body;
  return path;
}

std::vector<LibsvmFieldSpec> TwoCatOneContFields() {
  return {
      {"site", FieldType::kCategorical, 0, 100},
      {"device", FieldType::kCategorical, 100, 110},
      {"hour", FieldType::kContinuous, 110, 111},
  };
}

// ---------------------------------------------------------------------------
// libsvm loader
// ---------------------------------------------------------------------------

TEST(LibsvmLoaderTest, ParsesIndicesIntoFieldValues) {
  const std::string path = WriteTemp("a.svm",
                                     "1 5:1 103:1 110:17.5\n"
                                     "0 63:1 100:1 110:2.0\n");
  auto raw = LoadLibsvmDataset(path, TwoCatOneContFields());
  ASSERT_TRUE(raw.ok()) << raw.status().ToString();
  EXPECT_EQ(raw->num_rows, 2u);
  EXPECT_EQ(raw->labels, (std::vector<float>{1, 0}));
  EXPECT_EQ(raw->cat(0, 0), 5);     // site value = index - 0
  EXPECT_EQ(raw->cat(0, 1), 3);     // device value = 103 - 100
  EXPECT_FLOAT_EQ(raw->cont(0, 0), 17.5f);
  EXPECT_EQ(raw->cat(1, 0), 63);
  EXPECT_EQ(raw->cat(1, 1), 0);
}

TEST(LibsvmLoaderTest, MissingFieldGetsSentinel) {
  const std::string path = WriteTemp("b.svm", "1 5:1\n");
  LibsvmOptions opts;
  opts.missing_value = -7;
  auto raw = LoadLibsvmDataset(path, TwoCatOneContFields(), opts);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->cat(0, 1), -7);
  EXPECT_FLOAT_EQ(raw->cont(0, 0), 0.0f);
}

TEST(LibsvmLoaderTest, OutOfRangeIndexRejected) {
  const std::string path = WriteTemp("c.svm", "1 500:1\n");
  auto raw = LoadLibsvmDataset(path, TwoCatOneContFields());
  EXPECT_FALSE(raw.ok());
  EXPECT_EQ(raw.status().code(), StatusCode::kOutOfRange);
}

TEST(LibsvmLoaderTest, MalformedTokenRejected) {
  const std::string path = WriteTemp("d.svm", "1 nocolon\n");
  EXPECT_FALSE(LoadLibsvmDataset(path, TwoCatOneContFields()).ok());
}

TEST(LibsvmLoaderTest, OverlappingRangesRejected) {
  std::vector<LibsvmFieldSpec> bad = {
      {"a", FieldType::kCategorical, 0, 50},
      {"b", FieldType::kCategorical, 40, 90},
  };
  const std::string path = WriteTemp("e.svm", "1 5:1\n");
  EXPECT_FALSE(LoadLibsvmDataset(path, bad).ok());
}

TEST(LibsvmLoaderTest, MaxRowsCaps) {
  const std::string path = WriteTemp("f.svm", "1 5:1\n0 6:1\n1 7:1\n");
  LibsvmOptions opts;
  opts.max_rows = 2;
  auto raw = LoadLibsvmDataset(path, TwoCatOneContFields(), opts);
  ASSERT_TRUE(raw.ok());
  EXPECT_EQ(raw->num_rows, 2u);
}

TEST(LibsvmLoaderTest, EmptyFileRejected) {
  const std::string path = WriteTemp("g.svm", "");
  EXPECT_FALSE(LoadLibsvmDataset(path, TwoCatOneContFields()).ok());
}

TEST(LibsvmLoaderTest, TabDelimitedFileRejectedWithActionableMessage) {
  // Regression: a tab-separated file split on ' ' produces one token
  // "1\t5:2" whose label parse used to stop silently at the tab, dropping
  // every feature on the line. It must be an error naming the cause.
  const std::string path = WriteTemp("h.svm", "1\t5:2\n");
  auto raw = LoadLibsvmDataset(path, TwoCatOneContFields());
  ASSERT_FALSE(raw.ok());
  EXPECT_NE(raw.status().ToString().find("tab-delimited"), std::string::npos)
      << raw.status().ToString();
}

TEST(LibsvmLoaderTest, NonNumericIndexRejected) {
  // Regression: strtoull returned 0 for garbage, silently aliasing the
  // token onto feature index 0.
  const std::string path = WriteTemp("i.svm", "1 abc:2\n");
  auto raw = LoadLibsvmDataset(path, TwoCatOneContFields());
  ASSERT_FALSE(raw.ok());
  EXPECT_NE(raw.status().ToString().find("non-numeric index"),
            std::string::npos);
}

TEST(LibsvmLoaderTest, NonNumericValueRejected) {
  const std::string path = WriteTemp("j.svm", "1 5:xyz\n");
  auto raw = LoadLibsvmDataset(path, TwoCatOneContFields());
  ASSERT_FALSE(raw.ok());
  EXPECT_NE(raw.status().ToString().find("non-numeric value"),
            std::string::npos);
}

// ---------------------------------------------------------------------------
// AUC confidence intervals
// ---------------------------------------------------------------------------

TEST(AucCiTest, StandardErrorShrinksWithSampleSize) {
  const double se_small = AucStandardError(0.8, 50, 200);
  const double se_big = AucStandardError(0.8, 5000, 20000);
  EXPECT_GT(se_small, se_big);
  EXPECT_GT(se_big, 0.0);
}

TEST(AucCiTest, IntervalCoversPointEstimate) {
  Rng rng(3);
  std::vector<float> scores(2000), labels(2000);
  for (size_t i = 0; i < scores.size(); ++i) {
    labels[i] = rng.Bernoulli(0.3) ? 1.0f : 0.0f;
    scores[i] = static_cast<float>(
        rng.Gaussian(labels[i] > 0.5f ? 0.5 : 0.0, 1.0));
  }
  AucCi ci = AucWithConfidence(scores, labels);
  EXPECT_GT(ci.auc, 0.5);
  EXPECT_LT(ci.lo, ci.auc);
  EXPECT_GT(ci.hi, ci.auc);
  EXPECT_GE(ci.lo, 0.0);
  EXPECT_LE(ci.hi, 1.0);
  EXPECT_NEAR(ci.auc - ci.lo, 1.96 * ci.stderr_, 1e-9);
}

TEST(AucCiTest, PerfectAucHasZeroSe) {
  EXPECT_NEAR(AucStandardError(1.0, 100, 100), 0.0, 1e-12);
}

// ---------------------------------------------------------------------------
// Negative downsampling
// ---------------------------------------------------------------------------

TEST(DownsampleTest, KeepsAllPositives) {
  const auto& p = testing::SharedTinyData();
  Rng rng(5);
  auto kept = DownsampleNegatives(p.data, p.splits.train, 0.25, &rng);
  size_t pos_before = 0, pos_after = 0;
  for (size_t r : p.splits.train) pos_before += p.data.label(r) > 0.5f;
  for (size_t r : kept) pos_after += p.data.label(r) > 0.5f;
  EXPECT_EQ(pos_before, pos_after);
  EXPECT_LT(kept.size(), p.splits.train.size());
}

TEST(DownsampleTest, KeepRateApproximatelyHonored) {
  const auto& p = testing::SharedTinyData();
  Rng rng(6);
  auto kept = DownsampleNegatives(p.data, p.splits.train, 0.5, &rng);
  size_t neg_before = 0, neg_after = 0;
  for (size_t r : p.splits.train) neg_before += p.data.label(r) <= 0.5f;
  for (size_t r : kept) neg_after += p.data.label(r) <= 0.5f;
  EXPECT_NEAR(static_cast<double>(neg_after) / neg_before, 0.5, 0.05);
}

TEST(DownsampleTest, RateOneIsIdentity) {
  const auto& p = testing::SharedTinyData();
  Rng rng(7);
  auto kept = DownsampleNegatives(p.data, p.splits.train, 1.0, &rng);
  EXPECT_EQ(kept.size(), p.splits.train.size());
}

TEST(RecalibrateTest, InvertsDownsamplingOdds) {
  // A model trained at keep_rate w sees odds inflated by 1/w; the
  // recalibration must undo that exactly.
  const double w = 0.1;
  const float true_p = 0.05f;
  // Odds after downsampling: o' = o / w.
  const double o = true_p / (1.0f - true_p);
  const float biased = static_cast<float>((o / w) / (1.0 + o / w));
  EXPECT_NEAR(RecalibrateProbability(biased, w), true_p, 1e-6f);
}

TEST(RecalibrateTest, RateOneIsIdentity) {
  EXPECT_FLOAT_EQ(RecalibrateProbability(0.37f, 1.0), 0.37f);
}

TEST(RecalibrateTest, Monotone) {
  float prev = 0.0f;
  for (float p = 0.05f; p < 1.0f; p += 0.1f) {
    const float r = RecalibrateProbability(p, 0.2);
    EXPECT_GT(r, prev);
    prev = r;
  }
}

}  // namespace
}  // namespace optinter
