# Empty dependencies file for architecture_search.
# This may be replaced when dependencies are built.
