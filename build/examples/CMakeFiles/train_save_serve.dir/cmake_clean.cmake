file(REMOVE_RECURSE
  "CMakeFiles/train_save_serve.dir/train_save_serve.cpp.o"
  "CMakeFiles/train_save_serve.dir/train_save_serve.cpp.o.d"
  "train_save_serve"
  "train_save_serve.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/train_save_serve.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
