# Empty compiler generated dependencies file for criteo_like_end2end.
# This may be replaced when dependencies are built.
