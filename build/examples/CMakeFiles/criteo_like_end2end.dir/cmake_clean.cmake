file(REMOVE_RECURSE
  "CMakeFiles/criteo_like_end2end.dir/criteo_like_end2end.cpp.o"
  "CMakeFiles/criteo_like_end2end.dir/criteo_like_end2end.cpp.o.d"
  "criteo_like_end2end"
  "criteo_like_end2end.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/criteo_like_end2end.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
