file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_overall.dir/table5_overall.cc.o"
  "CMakeFiles/bench_table5_overall.dir/table5_overall.cc.o.d"
  "bench_table5_overall"
  "bench_table5_overall.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_overall.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
