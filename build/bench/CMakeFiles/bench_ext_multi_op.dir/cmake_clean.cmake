file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_multi_op.dir/ext_multi_op.cc.o"
  "CMakeFiles/bench_ext_multi_op.dir/ext_multi_op.cc.o.d"
  "bench_ext_multi_op"
  "bench_ext_multi_op.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_multi_op.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
