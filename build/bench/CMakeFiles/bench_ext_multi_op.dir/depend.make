# Empty dependencies file for bench_ext_multi_op.
# This may be replaced when dependencies are built.
