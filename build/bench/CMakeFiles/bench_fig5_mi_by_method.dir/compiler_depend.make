# Empty compiler generated dependencies file for bench_fig5_mi_by_method.
# This may be replaced when dependencies are built.
