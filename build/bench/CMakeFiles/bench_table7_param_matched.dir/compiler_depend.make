# Empty compiler generated dependencies file for bench_table7_param_matched.
# This may be replaced when dependencies are built.
