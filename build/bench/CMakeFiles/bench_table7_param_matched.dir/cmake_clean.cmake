file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_param_matched.dir/table7_param_matched.cc.o"
  "CMakeFiles/bench_table7_param_matched.dir/table7_param_matched.cc.o.d"
  "bench_table7_param_matched"
  "bench_table7_param_matched.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_param_matched.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
