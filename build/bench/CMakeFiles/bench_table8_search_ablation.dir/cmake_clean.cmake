file(REMOVE_RECURSE
  "CMakeFiles/bench_table8_search_ablation.dir/table8_search_ablation.cc.o"
  "CMakeFiles/bench_table8_search_ablation.dir/table8_search_ablation.cc.o.d"
  "bench_table8_search_ablation"
  "bench_table8_search_ablation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table8_search_ablation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
