file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_third_order.dir/ext_third_order.cc.o"
  "CMakeFiles/bench_ext_third_order.dir/ext_third_order.cc.o.d"
  "bench_ext_third_order"
  "bench_ext_third_order.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_third_order.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
