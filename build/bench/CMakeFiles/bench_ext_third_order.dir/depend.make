# Empty dependencies file for bench_ext_third_order.
# This may be replaced when dependencies are built.
