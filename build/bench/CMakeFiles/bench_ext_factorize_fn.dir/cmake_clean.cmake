file(REMOVE_RECURSE
  "CMakeFiles/bench_ext_factorize_fn.dir/ext_factorize_fn.cc.o"
  "CMakeFiles/bench_ext_factorize_fn.dir/ext_factorize_fn.cc.o.d"
  "bench_ext_factorize_fn"
  "bench_ext_factorize_fn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ext_factorize_fn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
