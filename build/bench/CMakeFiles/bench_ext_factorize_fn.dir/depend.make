# Empty dependencies file for bench_ext_factorize_fn.
# This may be replaced when dependencies are built.
