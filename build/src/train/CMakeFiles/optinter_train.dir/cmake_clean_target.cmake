file(REMOVE_RECURSE
  "liboptinter_train.a"
)
