# Empty compiler generated dependencies file for optinter_train.
# This may be replaced when dependencies are built.
