file(REMOVE_RECURSE
  "CMakeFiles/optinter_train.dir/trainer.cc.o"
  "CMakeFiles/optinter_train.dir/trainer.cc.o.d"
  "liboptinter_train.a"
  "liboptinter_train.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optinter_train.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
