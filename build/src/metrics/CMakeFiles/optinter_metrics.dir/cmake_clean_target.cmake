file(REMOVE_RECURSE
  "liboptinter_metrics.a"
)
