# Empty dependencies file for optinter_metrics.
# This may be replaced when dependencies are built.
