file(REMOVE_RECURSE
  "CMakeFiles/optinter_metrics.dir/metrics.cc.o"
  "CMakeFiles/optinter_metrics.dir/metrics.cc.o.d"
  "CMakeFiles/optinter_metrics.dir/mutual_information.cc.o"
  "CMakeFiles/optinter_metrics.dir/mutual_information.cc.o.d"
  "CMakeFiles/optinter_metrics.dir/significance.cc.o"
  "CMakeFiles/optinter_metrics.dir/significance.cc.o.d"
  "liboptinter_metrics.a"
  "liboptinter_metrics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optinter_metrics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
