file(REMOVE_RECURSE
  "liboptinter_io.a"
)
