file(REMOVE_RECURSE
  "CMakeFiles/optinter_io.dir/serialize.cc.o"
  "CMakeFiles/optinter_io.dir/serialize.cc.o.d"
  "liboptinter_io.a"
  "liboptinter_io.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optinter_io.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
