# Empty compiler generated dependencies file for optinter_io.
# This may be replaced when dependencies are built.
