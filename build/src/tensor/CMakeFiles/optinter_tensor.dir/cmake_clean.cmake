file(REMOVE_RECURSE
  "CMakeFiles/optinter_tensor.dir/kernels.cc.o"
  "CMakeFiles/optinter_tensor.dir/kernels.cc.o.d"
  "CMakeFiles/optinter_tensor.dir/tensor.cc.o"
  "CMakeFiles/optinter_tensor.dir/tensor.cc.o.d"
  "liboptinter_tensor.a"
  "liboptinter_tensor.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optinter_tensor.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
