# Empty dependencies file for optinter_tensor.
# This may be replaced when dependencies are built.
