file(REMOVE_RECURSE
  "liboptinter_tensor.a"
)
