# Empty compiler generated dependencies file for optinter_nn.
# This may be replaced when dependencies are built.
