file(REMOVE_RECURSE
  "CMakeFiles/optinter_nn.dir/embedding.cc.o"
  "CMakeFiles/optinter_nn.dir/embedding.cc.o.d"
  "CMakeFiles/optinter_nn.dir/init.cc.o"
  "CMakeFiles/optinter_nn.dir/init.cc.o.d"
  "CMakeFiles/optinter_nn.dir/layers.cc.o"
  "CMakeFiles/optinter_nn.dir/layers.cc.o.d"
  "CMakeFiles/optinter_nn.dir/mlp.cc.o"
  "CMakeFiles/optinter_nn.dir/mlp.cc.o.d"
  "CMakeFiles/optinter_nn.dir/optimizer.cc.o"
  "CMakeFiles/optinter_nn.dir/optimizer.cc.o.d"
  "liboptinter_nn.a"
  "liboptinter_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optinter_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
