
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/nn/embedding.cc" "src/nn/CMakeFiles/optinter_nn.dir/embedding.cc.o" "gcc" "src/nn/CMakeFiles/optinter_nn.dir/embedding.cc.o.d"
  "/root/repo/src/nn/init.cc" "src/nn/CMakeFiles/optinter_nn.dir/init.cc.o" "gcc" "src/nn/CMakeFiles/optinter_nn.dir/init.cc.o.d"
  "/root/repo/src/nn/layers.cc" "src/nn/CMakeFiles/optinter_nn.dir/layers.cc.o" "gcc" "src/nn/CMakeFiles/optinter_nn.dir/layers.cc.o.d"
  "/root/repo/src/nn/mlp.cc" "src/nn/CMakeFiles/optinter_nn.dir/mlp.cc.o" "gcc" "src/nn/CMakeFiles/optinter_nn.dir/mlp.cc.o.d"
  "/root/repo/src/nn/optimizer.cc" "src/nn/CMakeFiles/optinter_nn.dir/optimizer.cc.o" "gcc" "src/nn/CMakeFiles/optinter_nn.dir/optimizer.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/tensor/CMakeFiles/optinter_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/optinter_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
