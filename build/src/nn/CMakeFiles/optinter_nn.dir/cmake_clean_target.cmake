file(REMOVE_RECURSE
  "liboptinter_nn.a"
)
