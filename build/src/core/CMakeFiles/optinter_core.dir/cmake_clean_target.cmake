file(REMOVE_RECURSE
  "liboptinter_core.a"
)
