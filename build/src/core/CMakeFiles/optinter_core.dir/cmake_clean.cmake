file(REMOVE_RECURSE
  "CMakeFiles/optinter_core.dir/autofis.cc.o"
  "CMakeFiles/optinter_core.dir/autofis.cc.o.d"
  "CMakeFiles/optinter_core.dir/fixed_arch_model.cc.o"
  "CMakeFiles/optinter_core.dir/fixed_arch_model.cc.o.d"
  "CMakeFiles/optinter_core.dir/multi_op_search.cc.o"
  "CMakeFiles/optinter_core.dir/multi_op_search.cc.o.d"
  "CMakeFiles/optinter_core.dir/pipeline.cc.o"
  "CMakeFiles/optinter_core.dir/pipeline.cc.o.d"
  "CMakeFiles/optinter_core.dir/search_model.cc.o"
  "CMakeFiles/optinter_core.dir/search_model.cc.o.d"
  "CMakeFiles/optinter_core.dir/zoo.cc.o"
  "CMakeFiles/optinter_core.dir/zoo.cc.o.d"
  "liboptinter_core.a"
  "liboptinter_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optinter_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
