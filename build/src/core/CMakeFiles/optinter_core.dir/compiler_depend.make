# Empty compiler generated dependencies file for optinter_core.
# This may be replaced when dependencies are built.
