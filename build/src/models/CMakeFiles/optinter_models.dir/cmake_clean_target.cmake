file(REMOVE_RECURSE
  "liboptinter_models.a"
)
