# Empty dependencies file for optinter_models.
# This may be replaced when dependencies are built.
