
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/models/cross_embedding.cc" "src/models/CMakeFiles/optinter_models.dir/cross_embedding.cc.o" "gcc" "src/models/CMakeFiles/optinter_models.dir/cross_embedding.cc.o.d"
  "/root/repo/src/models/deep_models.cc" "src/models/CMakeFiles/optinter_models.dir/deep_models.cc.o" "gcc" "src/models/CMakeFiles/optinter_models.dir/deep_models.cc.o.d"
  "/root/repo/src/models/feature_embedding.cc" "src/models/CMakeFiles/optinter_models.dir/feature_embedding.cc.o" "gcc" "src/models/CMakeFiles/optinter_models.dir/feature_embedding.cc.o.d"
  "/root/repo/src/models/fm_family.cc" "src/models/CMakeFiles/optinter_models.dir/fm_family.cc.o" "gcc" "src/models/CMakeFiles/optinter_models.dir/fm_family.cc.o.d"
  "/root/repo/src/models/hyperparams.cc" "src/models/CMakeFiles/optinter_models.dir/hyperparams.cc.o" "gcc" "src/models/CMakeFiles/optinter_models.dir/hyperparams.cc.o.d"
  "/root/repo/src/models/interaction.cc" "src/models/CMakeFiles/optinter_models.dir/interaction.cc.o" "gcc" "src/models/CMakeFiles/optinter_models.dir/interaction.cc.o.d"
  "/root/repo/src/models/lr.cc" "src/models/CMakeFiles/optinter_models.dir/lr.cc.o" "gcc" "src/models/CMakeFiles/optinter_models.dir/lr.cc.o.d"
  "/root/repo/src/models/poly2.cc" "src/models/CMakeFiles/optinter_models.dir/poly2.cc.o" "gcc" "src/models/CMakeFiles/optinter_models.dir/poly2.cc.o.d"
  "/root/repo/src/models/triple_embedding.cc" "src/models/CMakeFiles/optinter_models.dir/triple_embedding.cc.o" "gcc" "src/models/CMakeFiles/optinter_models.dir/triple_embedding.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/optinter_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/optinter_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/optinter_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/optinter_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
