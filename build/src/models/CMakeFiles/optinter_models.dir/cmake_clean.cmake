file(REMOVE_RECURSE
  "CMakeFiles/optinter_models.dir/cross_embedding.cc.o"
  "CMakeFiles/optinter_models.dir/cross_embedding.cc.o.d"
  "CMakeFiles/optinter_models.dir/deep_models.cc.o"
  "CMakeFiles/optinter_models.dir/deep_models.cc.o.d"
  "CMakeFiles/optinter_models.dir/feature_embedding.cc.o"
  "CMakeFiles/optinter_models.dir/feature_embedding.cc.o.d"
  "CMakeFiles/optinter_models.dir/fm_family.cc.o"
  "CMakeFiles/optinter_models.dir/fm_family.cc.o.d"
  "CMakeFiles/optinter_models.dir/hyperparams.cc.o"
  "CMakeFiles/optinter_models.dir/hyperparams.cc.o.d"
  "CMakeFiles/optinter_models.dir/interaction.cc.o"
  "CMakeFiles/optinter_models.dir/interaction.cc.o.d"
  "CMakeFiles/optinter_models.dir/lr.cc.o"
  "CMakeFiles/optinter_models.dir/lr.cc.o.d"
  "CMakeFiles/optinter_models.dir/poly2.cc.o"
  "CMakeFiles/optinter_models.dir/poly2.cc.o.d"
  "CMakeFiles/optinter_models.dir/triple_embedding.cc.o"
  "CMakeFiles/optinter_models.dir/triple_embedding.cc.o.d"
  "liboptinter_models.a"
  "liboptinter_models.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optinter_models.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
