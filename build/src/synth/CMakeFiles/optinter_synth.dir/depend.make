# Empty dependencies file for optinter_synth.
# This may be replaced when dependencies are built.
