file(REMOVE_RECURSE
  "liboptinter_synth.a"
)
