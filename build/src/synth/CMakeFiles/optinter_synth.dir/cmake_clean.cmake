file(REMOVE_RECURSE
  "CMakeFiles/optinter_synth.dir/generator.cc.o"
  "CMakeFiles/optinter_synth.dir/generator.cc.o.d"
  "CMakeFiles/optinter_synth.dir/prepare.cc.o"
  "CMakeFiles/optinter_synth.dir/prepare.cc.o.d"
  "CMakeFiles/optinter_synth.dir/profiles.cc.o"
  "CMakeFiles/optinter_synth.dir/profiles.cc.o.d"
  "liboptinter_synth.a"
  "liboptinter_synth.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optinter_synth.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
