file(REMOVE_RECURSE
  "liboptinter_data.a"
)
