file(REMOVE_RECURSE
  "CMakeFiles/optinter_data.dir/batch.cc.o"
  "CMakeFiles/optinter_data.dir/batch.cc.o.d"
  "CMakeFiles/optinter_data.dir/csv_loader.cc.o"
  "CMakeFiles/optinter_data.dir/csv_loader.cc.o.d"
  "CMakeFiles/optinter_data.dir/dataset.cc.o"
  "CMakeFiles/optinter_data.dir/dataset.cc.o.d"
  "CMakeFiles/optinter_data.dir/encoder.cc.o"
  "CMakeFiles/optinter_data.dir/encoder.cc.o.d"
  "CMakeFiles/optinter_data.dir/fitted_encoder.cc.o"
  "CMakeFiles/optinter_data.dir/fitted_encoder.cc.o.d"
  "CMakeFiles/optinter_data.dir/libsvm_loader.cc.o"
  "CMakeFiles/optinter_data.dir/libsvm_loader.cc.o.d"
  "CMakeFiles/optinter_data.dir/schema.cc.o"
  "CMakeFiles/optinter_data.dir/schema.cc.o.d"
  "CMakeFiles/optinter_data.dir/vocab.cc.o"
  "CMakeFiles/optinter_data.dir/vocab.cc.o.d"
  "liboptinter_data.a"
  "liboptinter_data.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optinter_data.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
