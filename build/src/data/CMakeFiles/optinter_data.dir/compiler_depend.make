# Empty compiler generated dependencies file for optinter_data.
# This may be replaced when dependencies are built.
