
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/data/batch.cc" "src/data/CMakeFiles/optinter_data.dir/batch.cc.o" "gcc" "src/data/CMakeFiles/optinter_data.dir/batch.cc.o.d"
  "/root/repo/src/data/csv_loader.cc" "src/data/CMakeFiles/optinter_data.dir/csv_loader.cc.o" "gcc" "src/data/CMakeFiles/optinter_data.dir/csv_loader.cc.o.d"
  "/root/repo/src/data/dataset.cc" "src/data/CMakeFiles/optinter_data.dir/dataset.cc.o" "gcc" "src/data/CMakeFiles/optinter_data.dir/dataset.cc.o.d"
  "/root/repo/src/data/encoder.cc" "src/data/CMakeFiles/optinter_data.dir/encoder.cc.o" "gcc" "src/data/CMakeFiles/optinter_data.dir/encoder.cc.o.d"
  "/root/repo/src/data/fitted_encoder.cc" "src/data/CMakeFiles/optinter_data.dir/fitted_encoder.cc.o" "gcc" "src/data/CMakeFiles/optinter_data.dir/fitted_encoder.cc.o.d"
  "/root/repo/src/data/libsvm_loader.cc" "src/data/CMakeFiles/optinter_data.dir/libsvm_loader.cc.o" "gcc" "src/data/CMakeFiles/optinter_data.dir/libsvm_loader.cc.o.d"
  "/root/repo/src/data/schema.cc" "src/data/CMakeFiles/optinter_data.dir/schema.cc.o" "gcc" "src/data/CMakeFiles/optinter_data.dir/schema.cc.o.d"
  "/root/repo/src/data/vocab.cc" "src/data/CMakeFiles/optinter_data.dir/vocab.cc.o" "gcc" "src/data/CMakeFiles/optinter_data.dir/vocab.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/optinter_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
