# Empty dependencies file for optinter_common.
# This may be replaced when dependencies are built.
