file(REMOVE_RECURSE
  "CMakeFiles/optinter_common.dir/flags.cc.o"
  "CMakeFiles/optinter_common.dir/flags.cc.o.d"
  "CMakeFiles/optinter_common.dir/logging.cc.o"
  "CMakeFiles/optinter_common.dir/logging.cc.o.d"
  "CMakeFiles/optinter_common.dir/rng.cc.o"
  "CMakeFiles/optinter_common.dir/rng.cc.o.d"
  "CMakeFiles/optinter_common.dir/status.cc.o"
  "CMakeFiles/optinter_common.dir/status.cc.o.d"
  "CMakeFiles/optinter_common.dir/string_util.cc.o"
  "CMakeFiles/optinter_common.dir/string_util.cc.o.d"
  "CMakeFiles/optinter_common.dir/thread_pool.cc.o"
  "CMakeFiles/optinter_common.dir/thread_pool.cc.o.d"
  "liboptinter_common.a"
  "liboptinter_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/optinter_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
