file(REMOVE_RECURSE
  "liboptinter_common.a"
)
