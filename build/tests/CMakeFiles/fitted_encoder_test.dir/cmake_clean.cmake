file(REMOVE_RECURSE
  "CMakeFiles/fitted_encoder_test.dir/fitted_encoder_test.cc.o"
  "CMakeFiles/fitted_encoder_test.dir/fitted_encoder_test.cc.o.d"
  "fitted_encoder_test"
  "fitted_encoder_test.pdb"
  "fitted_encoder_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fitted_encoder_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
