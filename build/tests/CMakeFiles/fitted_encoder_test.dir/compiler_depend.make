# Empty compiler generated dependencies file for fitted_encoder_test.
# This may be replaced when dependencies are built.
