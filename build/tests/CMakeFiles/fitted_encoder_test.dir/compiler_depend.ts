# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for fitted_encoder_test.
