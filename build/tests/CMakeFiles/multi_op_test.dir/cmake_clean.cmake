file(REMOVE_RECURSE
  "CMakeFiles/multi_op_test.dir/multi_op_test.cc.o"
  "CMakeFiles/multi_op_test.dir/multi_op_test.cc.o.d"
  "multi_op_test"
  "multi_op_test.pdb"
  "multi_op_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_op_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
