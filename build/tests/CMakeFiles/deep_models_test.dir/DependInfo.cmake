
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/deep_models_test.cc" "tests/CMakeFiles/deep_models_test.dir/deep_models_test.cc.o" "gcc" "tests/CMakeFiles/deep_models_test.dir/deep_models_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/optinter_core.dir/DependInfo.cmake"
  "/root/repo/build/src/io/CMakeFiles/optinter_io.dir/DependInfo.cmake"
  "/root/repo/build/src/train/CMakeFiles/optinter_train.dir/DependInfo.cmake"
  "/root/repo/build/src/models/CMakeFiles/optinter_models.dir/DependInfo.cmake"
  "/root/repo/build/src/synth/CMakeFiles/optinter_synth.dir/DependInfo.cmake"
  "/root/repo/build/src/metrics/CMakeFiles/optinter_metrics.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/optinter_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/data/CMakeFiles/optinter_data.dir/DependInfo.cmake"
  "/root/repo/build/src/tensor/CMakeFiles/optinter_tensor.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/optinter_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
