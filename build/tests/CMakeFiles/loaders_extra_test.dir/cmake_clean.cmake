file(REMOVE_RECURSE
  "CMakeFiles/loaders_extra_test.dir/loaders_extra_test.cc.o"
  "CMakeFiles/loaders_extra_test.dir/loaders_extra_test.cc.o.d"
  "loaders_extra_test"
  "loaders_extra_test.pdb"
  "loaders_extra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loaders_extra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
