# Empty dependencies file for loaders_extra_test.
# This may be replaced when dependencies are built.
