# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/tensor_test[1]_include.cmake")
include("/root/repo/build/tests/common_test[1]_include.cmake")
include("/root/repo/build/tests/nn_test[1]_include.cmake")
include("/root/repo/build/tests/data_test[1]_include.cmake")
include("/root/repo/build/tests/metrics_test[1]_include.cmake")
include("/root/repo/build/tests/synth_test[1]_include.cmake")
include("/root/repo/build/tests/models_test[1]_include.cmake")
include("/root/repo/build/tests/core_test[1]_include.cmake")
include("/root/repo/build/tests/train_test[1]_include.cmake")
include("/root/repo/build/tests/io_test[1]_include.cmake")
include("/root/repo/build/tests/csv_loader_test[1]_include.cmake")
include("/root/repo/build/tests/extensions_test[1]_include.cmake")
include("/root/repo/build/tests/property_test[1]_include.cmake")
include("/root/repo/build/tests/fitted_encoder_test[1]_include.cmake")
include("/root/repo/build/tests/deep_models_test[1]_include.cmake")
include("/root/repo/build/tests/state_test[1]_include.cmake")
include("/root/repo/build/tests/multi_op_test[1]_include.cmake")
include("/root/repo/build/tests/loaders_extra_test[1]_include.cmake")
